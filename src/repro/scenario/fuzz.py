"""Coverage-guided scenario fuzzing on top of the sweep engine.

The loop is classic mutation fuzzing with the repo's determinism
discipline:

* The *corpus* starts from :func:`~repro.scenario.schema.legacy_scenarios`
  (the two paper worlds) and grows by admission: a mutant joins when its
  mission lights up a coverage bin (:mod:`repro.scenario.coverage`) no
  earlier mission hit.
* *Mutators* are small seeded edits — geometry stretch/family swap,
  obstacle add/move/drop, sensor-noise scaling, fault-plan injection,
  spawn and velocity perturbation.  Every draw comes from one injected
  :class:`random.Random`; an infeasible draw
  (:class:`~repro.errors.ScenarioError` from the compiler) is simply
  redrawn.  Lint rule SCN001 keeps module-level RNGs out of this package.
* *Evaluation* goes through :class:`~repro.sweep.runner.SweepRunner`,
  which preserves task order in its outcomes regardless of worker
  scheduling — so coverage observation (and therefore admission, corpus
  order, and the final map) is deterministic even with parallel workers.
* *Minimization* greedily strips an admitted failure scenario back
  toward defaults (obstacles, faults, noise, spawn, velocity, sync),
  keeping each reduction only if the failure mode survives, to a
  fixpoint — the committed reproducer is the smallest document this
  deterministic pass can reach.

Artifacts under the corpus directory (all canonical, no timestamps):
``scenarios/<key>.json`` (admitted documents), ``corpus.jsonl``
(admission journal in admission order), ``coverage.json`` (the map),
``report.json`` (campaign summary), ``minimized/<source-key>.json``
(reproducers).  Two runs with the same seed and budget produce
byte-identical trees.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.core.config import CoSimConfig
from repro.core.cosim import MissionResult, run_mission
from repro.core.faults import (
    SCHEDULED_KINDS,
    SENSOR_RESPONSE_TYPES,
    FaultPlan,
    FaultRule,
    ScheduledFault,
)
from repro.env.sensors import SensorNoiseProfile
from repro.errors import ConfigError, ScenarioError
from repro.scenario.coverage import CoverageMap, failure_modes, mission_features
from repro.scenario.generate import (
    CENTERLINE_MARGIN,
    GOAL_CLEARANCE,
    SPAWN_CLEARANCE,
    VEHICLE_RADIUS,
    compile_config,
)
from repro.scenario.schema import (
    GeometrySpec,
    ObstacleSpec,
    Scenario,
    SpawnSpec,
    legacy_scenarios,
    scenario_key,
)
from repro.sweep.runner import SweepRunner
from repro.sweep.signature import mission_signature

FUZZ_REPORT_FORMAT = "rose-fuzz-report/1"
MINIMIZED_FORMAT = "rose-fuzz-min/1"

#: When every failure mode is present, minimize the highest-priority one.
_MODE_PRIORITY = ("watchdog", "link-timeout", "crash", "deadline-miss", "crc-storm")

#: Redraws per mutation before falling back to a plain reseed.
_MUTATION_RETRIES = 8


@dataclass(frozen=True)
class FuzzSettings:
    """One campaign's knobs.  Identical settings ⇒ identical artifacts."""

    budget: int = 25
    seed: int = 0
    workers: int = 1
    round_size: int = 5
    #: Simulated-time budget per mission; short missions keep campaigns
    #: cheap and make the ``deadline-miss`` mode reachable.
    max_sim_time: float = 8.0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigError("fuzz budget must be at least 1")
        if not (0 <= self.seed < 2**32):
            raise ConfigError("fuzz seed must lie in [0, 2**32)")
        if self.workers < 1:
            raise ConfigError("fuzz workers must be at least 1")
        if self.round_size < 1:
            raise ConfigError("fuzz round_size must be at least 1")
        if self.max_sim_time <= 0:
            raise ConfigError("fuzz max_sim_time must be positive")


@dataclass
class CorpusEntry:
    """One admitted scenario plus why it was admitted."""

    key: str
    scenario: Scenario
    signature: str
    round: int
    new_bins: tuple[str, ...]
    failure_modes: tuple[str, ...]

    def journal_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "name": self.scenario.name,
            "signature": self.signature,
            "round": self.round,
            "new_bins": list(self.new_bins),
            "failure_modes": list(self.failure_modes),
        }


@dataclass
class FuzzReport:
    """Campaign summary (the ``report.json`` content, minus formatting)."""

    settings: FuzzSettings
    baseline_bins: int
    coverage_bins: int
    evaluated: int
    admitted: int
    failures: dict[str, list[str]]
    minimized: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FUZZ_REPORT_FORMAT,
            "budget": self.settings.budget,
            "seed": self.settings.seed,
            "round_size": self.settings.round_size,
            "max_sim_time": self.settings.max_sim_time,
            "baseline_bins": self.baseline_bins,
            "coverage_bins": self.coverage_bins,
            "evaluated": self.evaluated,
            "admitted": self.admitted,
            "failures": {key: sorted(modes) for key, modes in sorted(self.failures.items())},
            "minimized": dict(sorted(self.minimized.items())),
        }


# ---------------------------------------------------------------------------
# Mutators
# ---------------------------------------------------------------------------
def _mutate_geometry_length(rng: random.Random, s: Scenario) -> Scenario:
    length = min(200.0, max(20.0, s.geometry.length * rng.uniform(0.5, 1.8)))
    return replace(s, geometry=replace(s.geometry, length=round(length, 2)))


def _mutate_geometry_width(rng: random.Random, s: Scenario) -> Scenario:
    width = min(12.0, max(2.0, s.geometry.width * rng.uniform(0.6, 1.6)))
    return replace(s, geometry=replace(s.geometry, width=round(width, 2)))


def _mutate_geometry_amplitude(rng: random.Random, s: Scenario) -> Scenario:
    amplitude = max(0.5, s.geometry.amplitude * rng.uniform(0.4, 1.6))
    return replace(s, geometry=replace(s.geometry, amplitude=round(amplitude, 2)))


def _mutate_geometry_family(rng: random.Random, s: Scenario) -> Scenario:
    family = rng.choice([f for f in ("straight", "sine", "zigzag") if f != s.geometry.family])
    length, width = s.geometry.length, s.geometry.width
    if family == "straight":
        geometry = GeometrySpec(family="straight", length=length, width=width)
    elif family == "sine":
        amplitude = round(rng.uniform(0.5, length / 4.0), 2)
        geometry = GeometrySpec(
            family="sine", length=length, width=width, amplitude=amplitude,
            periods=rng.choice([0.5, 1.0, 1.5, 2.0]),
        )
    else:
        segments = rng.randint(3, 12)
        amplitude = round(rng.uniform(0.5, length / (2.0 * segments)), 2)
        geometry = GeometrySpec(
            family="zigzag", length=length, width=width,
            amplitude=amplitude, segments=segments,
        )
    # Obstacle placements rarely survive a family swap; start clean.
    return replace(s, geometry=geometry, obstacles=())


def _mutate_sine_periods(rng: random.Random, s: Scenario) -> Scenario:
    if s.geometry.family != "sine":
        raise ScenarioError("periods mutation applies to sine geometry")
    periods = rng.choice([0.5, 0.75, 1.5, 2.0, 3.0])
    return replace(s, geometry=replace(s.geometry, periods=periods))


def _mutate_zigzag_segments(rng: random.Random, s: Scenario) -> Scenario:
    if s.geometry.family != "zigzag":
        raise ScenarioError("segments mutation applies to zigzag geometry")
    return replace(s, geometry=replace(s.geometry, segments=rng.randint(2, 16)))


def _mutate_obstacle_add(rng: random.Random, s: Scenario) -> Scenario:
    half_width = s.geometry.width / 2.0
    max_radius = min(0.8, half_width - VEHICLE_RADIUS - CENTERLINE_MARGIN - 0.1)
    if max_radius < 0.15:
        raise ScenarioError("corridor too narrow for an obstacle")
    radius = round(rng.uniform(0.15, max_radius), 2)
    s_lo = SPAWN_CLEARANCE + radius + 0.1
    s_hi = s.geometry.length - GOAL_CLEARANCE * 2.0 - radius - 0.1
    if s_hi <= s_lo:
        raise ScenarioError("course too short for an obstacle")
    d_lo = radius + VEHICLE_RADIUS + CENTERLINE_MARGIN + 0.02
    d_hi = half_width
    if d_hi <= d_lo:
        raise ScenarioError("no lateral room for an obstacle")
    obstacle = ObstacleSpec(
        s=round(rng.uniform(s_lo, s_hi), 2),
        d=round(rng.choice([-1.0, 1.0]) * rng.uniform(d_lo, d_hi), 2),
        radius=radius,
        shape=rng.choice(["diamond", "box"]),
    )
    return replace(s, obstacles=s.obstacles + (obstacle,))


def _mutate_obstacle_move(rng: random.Random, s: Scenario) -> Scenario:
    if not s.obstacles:
        raise ScenarioError("no obstacle to move")
    index = rng.randrange(len(s.obstacles))
    ob = s.obstacles[index]
    moved = ObstacleSpec(
        s=round(max(0.0, ob.s + rng.uniform(-5.0, 5.0)), 2),
        d=round(ob.d + rng.uniform(-0.6, 0.6), 2),
        radius=ob.radius,
        shape=ob.shape,
    )
    obstacles = list(s.obstacles)
    obstacles[index] = moved
    return replace(s, obstacles=tuple(obstacles))


def _mutate_obstacle_drop(rng: random.Random, s: Scenario) -> Scenario:
    if not s.obstacles:
        raise ScenarioError("no obstacle to drop")
    index = rng.randrange(len(s.obstacles))
    return replace(s, obstacles=s.obstacles[:index] + s.obstacles[index + 1 :])


def _mutate_noise(rng: random.Random, s: Scenario) -> Scenario:
    scales = s.noise.to_dict()
    which = rng.choice(sorted(scales))
    scales[which] = round(rng.uniform(0.0, 8.0), 2)
    return replace(s, noise=SensorNoiseProfile(**scales))


def _mutate_fault_wire(rng: random.Random, s: Scenario) -> Scenario:
    kind = rng.choice(["drop", "corrupt", "duplicate", "delay"])
    probability = round(rng.uniform(0.05, 0.5), 3)
    seed = rng.randrange(2**16)
    rules = tuple(
        FaultRule(ptype=ptype, **{kind: probability})
        for ptype in SENSOR_RESPONSE_TYPES
    )
    scheduled = s.faults.scheduled if s.faults is not None else ()
    return replace(s, faults=FaultPlan(seed=seed, rules=rules, scheduled=scheduled))


def _mutate_fault_window(rng: random.Random, s: Scenario) -> Scenario:
    kind = rng.choice(list(SCHEDULED_KINDS))
    start = rng.randint(0, 30)
    window = ScheduledFault(
        kind=kind,
        start_step=start,
        end_step=start + rng.randint(2, 20),
        ptype=rng.choice(list(SENSOR_RESPONSE_TYPES)) if kind in ("drop", "corrupt") else None,
    )
    base = s.faults if s.faults is not None else FaultPlan(seed=rng.randrange(2**16))
    return replace(s, faults=replace(base, scheduled=base.scheduled + (window,)))


def _mutate_fault_drop(rng: random.Random, s: Scenario) -> Scenario:
    if s.faults is None:
        raise ScenarioError("no fault plan to drop")
    return replace(s, faults=None)


def _mutate_velocity(rng: random.Random, s: Scenario) -> Scenario:
    velocity = round(rng.uniform(1.0, 8.0), 2)
    return replace(s, vehicle=replace(s.vehicle, target_velocity=velocity))


def _mutate_spawn_angle(rng: random.Random, s: Scenario) -> Scenario:
    return replace(s, spawn=replace(s.spawn, angle_deg=round(rng.uniform(-40.0, 40.0), 1)))


def _mutate_spawn_offset(rng: random.Random, s: Scenario) -> Scenario:
    limit = s.geometry.width / 2.0 - 0.45
    if limit <= 0.05:
        raise ScenarioError("corridor too narrow for a spawn offset")
    offset = round(rng.choice([-1.0, 1.0]) * rng.uniform(0.05, limit), 2)
    return replace(s, spawn=replace(s.spawn, lateral_offset=offset))


def _mutate_sync(rng: random.Random, s: Scenario) -> Scenario:
    cycles = rng.choice([10_000_000, 20_000_000, 40_000_000, 100_000_000])
    return replace(s, cycles_per_sync=cycles)


def _mutate_reseed(rng: random.Random, s: Scenario) -> Scenario:
    return replace(s, seed=rng.randrange(2**32))


#: The mutator pool.  ``obstacle_add`` and the fault mutators appear
#: more than once: obstacles and wire faults are the cheapest route to
#: the crash / watchdog / crc-storm coverage frontier.
MUTATORS: tuple[tuple[str, Callable[[random.Random, Scenario], Scenario]], ...] = (
    ("geometry_length", _mutate_geometry_length),
    ("geometry_width", _mutate_geometry_width),
    ("geometry_amplitude", _mutate_geometry_amplitude),
    ("geometry_family", _mutate_geometry_family),
    ("sine_periods", _mutate_sine_periods),
    ("zigzag_segments", _mutate_zigzag_segments),
    ("obstacle_add", _mutate_obstacle_add),
    ("obstacle_add", _mutate_obstacle_add),
    ("obstacle_add", _mutate_obstacle_add),
    ("obstacle_move", _mutate_obstacle_move),
    ("obstacle_drop", _mutate_obstacle_drop),
    ("noise", _mutate_noise),
    ("fault_wire", _mutate_fault_wire),
    ("fault_wire", _mutate_fault_wire),
    ("fault_window", _mutate_fault_window),
    ("fault_drop", _mutate_fault_drop),
    ("velocity", _mutate_velocity),
    ("spawn_angle", _mutate_spawn_angle),
    ("spawn_offset", _mutate_spawn_offset),
    ("sync", _mutate_sync),
    ("reseed", _mutate_reseed),
)


def mutate(rng: random.Random, parent: Scenario, name: str) -> Scenario:
    """One feasible mutant of ``parent``, named ``name``.

    Draws a mutator, applies it, and *compiles* the result (the compile
    step runs every feasibility check).  Infeasible draws redraw up to
    :data:`_MUTATION_RETRIES` times; the reseed mutator — which cannot
    fail — is the terminal fallback, so this function always returns.
    """
    for _ in range(_MUTATION_RETRIES):
        _, mutator = rng.choice(MUTATORS)
        try:
            mutant = mutator(rng, parent).with_name(name)
            compile_config(mutant)
            return mutant
        except ScenarioError:
            continue
    return _mutate_reseed(rng, parent).with_name(name)


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------
def _evaluate(
    scenarios: list[Scenario], settings: FuzzSettings
) -> list[MissionResult]:
    """Run scenarios through the sweep engine; results in task order."""
    tasks = [
        (s.name, compile_config(s, max_sim_time=settings.max_sim_time))
        for s in scenarios
    ]
    report = SweepRunner(workers=settings.workers).run(tasks)
    results: list[MissionResult] = []
    for outcome in report.outcomes:
        if outcome.result is None:  # pragma: no cover - supervised failure
            raise ConfigError(
                f"fuzz mission {outcome.name!r} failed to execute: {outcome.state}"
            )
        results.append(outcome.result)
    return results


def _write_canonical(path: Path, data: Any) -> None:
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def run_fuzz(settings: FuzzSettings, corpus_dir: Path) -> FuzzReport:
    """Run one fuzzing campaign, writing all artifacts under ``corpus_dir``."""
    rng = random.Random(settings.seed)
    corpus_dir = Path(corpus_dir)
    scenarios_dir = corpus_dir / "scenarios"
    minimized_dir = corpus_dir / "minimized"
    scenarios_dir.mkdir(parents=True, exist_ok=True)
    minimized_dir.mkdir(parents=True, exist_ok=True)

    coverage = CoverageMap()
    corpus: list[CorpusEntry] = []
    failures: dict[str, list[str]] = {}

    # Round 0: the legacy families seed the corpus and define the
    # baseline coverage the campaign must strictly exceed.
    seeds = [
        replace(scenario, name=f"seed-{name.replace('_', '-')}",
                max_sim_time=max(settings.max_sim_time, 1.0))
        for name, scenario in sorted(legacy_scenarios().items())
    ]
    seed_results = _evaluate(seeds, settings)
    for scenario, result in zip(seeds, seed_results):
        new_bins = coverage.observe(mission_features(scenario, result))
        corpus.append(
            CorpusEntry(
                key=scenario_key(scenario),
                scenario=scenario,
                signature=mission_signature(result),
                round=0,
                new_bins=new_bins,
                failure_modes=failure_modes(result),
            )
        )
    baseline_bins = len(coverage)

    evaluated = 0
    round_number = 0
    while evaluated < settings.budget:
        round_number += 1
        batch_size = min(settings.round_size, settings.budget - evaluated)
        mutants: list[Scenario] = []
        for index in range(batch_size):
            parent = rng.choice(corpus).scenario
            mutants.append(mutate(rng, parent, f"fz-{round_number}-{index}"))
        results = _evaluate(mutants, settings)
        evaluated += batch_size
        for scenario, result in zip(mutants, results):
            modes = failure_modes(result)
            new_bins = coverage.observe(mission_features(scenario, result))
            if not new_bins:
                continue
            entry = CorpusEntry(
                key=scenario_key(scenario),
                scenario=scenario,
                signature=mission_signature(result),
                round=round_number,
                new_bins=new_bins,
                failure_modes=modes,
            )
            corpus.append(entry)
            if modes:
                failures[entry.key] = list(modes)

    # Persist the corpus: documents, admission journal, coverage map.
    for entry in corpus:
        _write_canonical(scenarios_dir / f"{entry.key}.json", entry.scenario.to_dict())
    journal_lines = [
        json.dumps(entry.journal_dict(), sort_keys=True, separators=(",", ":"))
        for entry in corpus
    ]
    (corpus_dir / "corpus.jsonl").write_text("\n".join(journal_lines) + "\n")
    (corpus_dir / "coverage.json").write_text(coverage.to_json() + "\n")

    # Minimize the highest-priority discovered failure (mutants only —
    # the seeds are the baseline, not discoveries).
    report = FuzzReport(
        settings=settings,
        baseline_bins=baseline_bins,
        coverage_bins=len(coverage),
        evaluated=evaluated,
        admitted=len(corpus) - len(seeds),
        failures=failures,
    )
    target = _pick_minimization_target(corpus)
    if target is not None:
        entry, mode = target
        minimized, runs = minimize_scenario(entry.scenario, mode, settings)
        min_config = compile_config(minimized, max_sim_time=settings.max_sim_time)
        min_result = run_mission(min_config)
        _write_canonical(
            minimized_dir / f"{entry.key}.json",
            {
                "format": MINIMIZED_FORMAT,
                "source": entry.key,
                "failure_mode": mode,
                "runs": runs,
                "scenario": minimized.to_dict(),
                "scenario_key": scenario_key(minimized),
                "signature": mission_signature(min_result),
            },
        )
        report.minimized[entry.key] = scenario_key(minimized)

    _write_canonical(corpus_dir / "report.json", report.to_dict())
    return report


def _pick_minimization_target(
    corpus: list[CorpusEntry],
) -> tuple[CorpusEntry, str] | None:
    best: tuple[int, int, str, CorpusEntry, str] | None = None
    for entry in corpus:
        if entry.round == 0:
            continue
        for mode in entry.failure_modes:
            rank = (_MODE_PRIORITY.index(mode), entry.round, entry.key, entry, mode)
            if best is None or rank[:3] < best[:3]:
                best = rank
    if best is None:
        return None
    return best[3], best[4]


# ---------------------------------------------------------------------------
# Minimization and replay
# ---------------------------------------------------------------------------
def _exhibits(scenario: Scenario, mode: str, settings: FuzzSettings) -> bool:
    config = compile_config(scenario, max_sim_time=settings.max_sim_time)
    return mode in failure_modes(run_mission(config))


def _reduction_candidates(scenario: Scenario) -> list[Scenario]:
    """Simpler variants of ``scenario``, most aggressive first."""
    candidates: list[Scenario] = []
    if scenario.obstacles:
        candidates.append(replace(scenario, obstacles=()))
        for index in range(len(scenario.obstacles)):
            candidates.append(
                replace(
                    scenario,
                    obstacles=scenario.obstacles[:index]
                    + scenario.obstacles[index + 1 :],
                )
            )
    if scenario.faults is not None:
        candidates.append(replace(scenario, faults=None))
        if scenario.faults.rules and scenario.faults.scheduled:
            candidates.append(replace(scenario, faults=replace(scenario.faults, scheduled=())))
            candidates.append(replace(scenario, faults=replace(scenario.faults, rules=())))
    if not scenario.noise.is_identity:
        candidates.append(replace(scenario, noise=SensorNoiseProfile()))
    if scenario.spawn != SpawnSpec():
        candidates.append(replace(scenario, spawn=SpawnSpec()))
    if scenario.vehicle.target_velocity != 3.0:
        candidates.append(
            replace(scenario, vehicle=replace(scenario.vehicle, target_velocity=3.0))
        )
    if scenario.cycles_per_sync != 10_000_000:
        candidates.append(replace(scenario, cycles_per_sync=10_000_000))
    return candidates


def minimize_scenario(
    scenario: Scenario, mode: str, settings: FuzzSettings
) -> tuple[Scenario, int]:
    """Greedy deterministic reduction preserving failure ``mode``.

    Returns ``(minimal scenario, missions run)``.  Each pass tries the
    reduction candidates in a fixed order and restarts from the first
    one that still exhibits the failure; the loop ends at a fixpoint.
    """
    current = scenario.with_name(f"{scenario.name}-min"[-64:].lstrip("-_"))
    runs = 0
    progress = True
    while progress:
        progress = False
        for candidate in _reduction_candidates(current):
            try:
                compile_config(candidate)
            except ScenarioError:  # pragma: no cover - reductions stay valid
                continue
            runs += 1
            if _exhibits(candidate, mode, settings):
                current = candidate
                progress = True
                break
    return current, runs


def load_corpus_journal(corpus_dir: Path) -> list[dict[str, Any]]:
    """Parse ``corpus.jsonl`` (admission order preserved)."""
    path = Path(corpus_dir) / "corpus.jsonl"
    if not path.exists():
        raise ConfigError(f"no corpus journal at {path}")
    entries = []
    for line in path.read_text().splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries


def load_scenario(corpus_dir: Path, key: str) -> Scenario:
    """Load one admitted scenario document by content key."""
    path = Path(corpus_dir) / "scenarios" / f"{key}.json"
    if not path.exists():
        raise ConfigError(f"no scenario {key!r} under {corpus_dir}")
    return Scenario.from_json(path.read_text())


def replay(corpus_dir: Path, key: str, settings: FuzzSettings) -> tuple[bool, str, str]:
    """Re-run one corpus scenario; ``(match, expected, actual)`` signatures.

    The expected signature comes from the admission journal; a mismatch
    means the simulation stack no longer reproduces the recorded
    behaviour (the same contract ``repro verify`` enforces for goldens).
    """
    journal = load_corpus_journal(corpus_dir)
    expected = next((e["signature"] for e in journal if e["key"] == key), None)
    if expected is None:
        raise ConfigError(f"scenario {key!r} is not in the corpus journal")
    scenario = load_scenario(corpus_dir, key)
    config = compile_config(scenario, max_sim_time=settings.max_sim_time)
    actual = mission_signature(run_mission(config))
    return actual == expected, expected, actual


def scenario_config(scenario: Scenario) -> CoSimConfig:
    """Convenience: the full-budget configuration of a scenario."""
    return compile_config(scenario)
