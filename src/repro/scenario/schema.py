"""The ``rose-scenario/1`` declarative scenario schema.

A *scenario* is everything one deployment situation means: the world
geometry family and its parameters, obstacle placement inside the
corridor, the spawn pose, a sensor-noise profile, an optional
:class:`~repro.core.faults.FaultPlan`, the vehicle/software stack, and
the synchronization granularity.  The paper evaluates its SoCs over just
two procedural worlds; this schema is the scenario-breadth axis —
every document here compiles (via :mod:`repro.scenario.generate`) into a
:class:`~repro.core.config.CoSimConfig` the existing mission runner,
sweep engine and result cache execute unchanged.

Design rules, in the repo's house style:

* **Strict validation** — every level rejects unknown fields and
  out-of-range values with a typed
  :class:`~repro.errors.ScenarioError`; a schema-valid document never
  produces a bare exception downstream.
* **Canonical JSON round-trip** — :meth:`Scenario.to_dict` emits only
  the fields relevant to the chosen geometry family, in canonical form;
  ``from_dict(to_dict(s))`` reproduces ``s`` exactly.
* **Content-addressed identity** — :func:`scenario_key` is the sha256 of
  the canonical JSON, the same content-addressing discipline as
  ``config_key``/``mission_signature``, so fuzzer corpora are
  deduplicated and replayable by key.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.faults import FaultPlan
from repro.env.sensors import SensorNoiseProfile
from repro.errors import ConfigError, ScenarioError

SCENARIO_FORMAT = "rose-scenario/1"

#: Geometry families the compiler knows how to build.
GEOMETRY_FAMILIES = ("straight", "sine", "zigzag")

#: Obstacle cross-section shapes (compiled to four wall segments each).
OBSTACLE_SHAPES = ("diamond", "box")

#: Scenario names are corpus file stems; keep them filesystem-safe.
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")

#: Hard bound on obstacles per scenario (keeps worlds and fuzz missions
#: small; the mutators respect it).
MAX_OBSTACLES = 8

#: Geometry parameter bounds.  Mutators clamp into these; validation
#: rejects anything outside so hand-written documents get the same
#: treatment as fuzzed ones.
LENGTH_RANGE = (20.0, 200.0)
WIDTH_RANGE = (2.0, 12.0)
PERIODS_RANGE = (0.25, 4.0)
RESOLUTION_RANGE = (33, 1601)
SEGMENTS_RANGE = (2, 32)
OBSTACLE_RADIUS_RANGE = (0.15, 1.5)
SPAWN_ANGLE_RANGE = (-45.0, 45.0)
VELOCITY_RANGE = (0.5, 12.0)
CYCLES_RANGE = (10_000_000, 400_000_000)
MAX_SIM_TIME_RANGE = (1.0, 300.0)

#: Clearance the spawn pose keeps from each wall (vehicle radius plus
#: margin); cross-checked against the corridor width at schema level.
SPAWN_WALL_CLEARANCE = 0.4


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, Any], known: set[str], what: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(f"unknown {what} field(s): {', '.join(unknown)}")


def _number(data: Mapping[str, Any], key: str, default: float, what: str) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{what}.{key} must be a number, got {value!r}")
    return float(value)


def _integer(data: Mapping[str, Any], key: str, default: int, what: str) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{what}.{key} must be an integer, got {value!r}")
    return int(value)


def _check_range(name: str, value: float, bounds: tuple[float, float]) -> None:
    lo, hi = bounds
    if not (lo <= value <= hi):
        raise ScenarioError(f"{name} must lie in [{lo}, {hi}], got {value}")


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------
def _relevant_geometry_params(family: str) -> tuple[str, ...]:
    """The shape parameters a geometry family actually consumes."""
    if family == "sine":
        return ("length", "width", "amplitude", "periods", "resolution")
    if family == "zigzag":
        return ("length", "width", "amplitude", "segments")
    return ("length", "width")


@dataclass(frozen=True)
class GeometrySpec:
    """One corridor geometry: a family plus its shape parameters.

    Family-irrelevant parameters are normalized back to their defaults
    at construction, and :meth:`to_dict` emits only the relevant subset
    — so two specs that build the same corridor always share one
    canonical form (and therefore one ``scenario_key``).
    """

    family: str = "straight"
    length: float = 50.0
    width: float = 3.2
    amplitude: float = 10.0  # sine / zigzag
    periods: float = 1.0  # sine
    resolution: int = 161  # sine
    segments: int = 8  # zigzag

    def __post_init__(self) -> None:
        if self.family not in GEOMETRY_FAMILIES:
            raise ScenarioError(
                f"geometry.family must be one of {GEOMETRY_FAMILIES}, "
                f"got {self.family!r}"
            )
        _check_range("geometry.length", self.length, LENGTH_RANGE)
        _check_range("geometry.width", self.width, WIDTH_RANGE)
        if self.family == "sine":
            _check_range("geometry.periods", self.periods, PERIODS_RANGE)
            _check_range("geometry.resolution", self.resolution, RESOLUTION_RANGE)
            _check_range(
                "geometry.amplitude", self.amplitude, (0.5, self.length / 4.0)
            )
        elif self.family == "zigzag":
            _check_range("geometry.segments", self.segments, SEGMENTS_RANGE)
            # Bounded corner sharpness: each leg spans length/segments
            # meters of course, so amplitude above half that makes the
            # averaged-normal wall offset fold over itself.
            _check_range(
                "geometry.amplitude",
                self.amplitude,
                (0.5, self.length / (2.0 * self.segments)),
            )
        # Normalize family-irrelevant knobs to their defaults so they
        # never leak into equality or the canonical document.
        defaults = GeometrySpec.__dataclass_fields__
        for name in ("amplitude", "periods", "resolution", "segments"):
            if name not in _relevant_geometry_params(self.family):
                object.__setattr__(self, name, defaults[name].default)

    def _relevant(self) -> tuple[str, ...]:
        return _relevant_geometry_params(self.family)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"family": self.family}
        for name in self._relevant():
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "GeometrySpec":
        data = _require_mapping(data, "geometry")
        family = data.get("family", "straight")
        if family not in GEOMETRY_FAMILIES:
            raise ScenarioError(
                f"geometry.family must be one of {GEOMETRY_FAMILIES}, got {family!r}"
            )
        relevant = _relevant_geometry_params(family)
        _reject_unknown(data, {"family", *relevant}, "geometry")
        defaults = cls.__dataclass_fields__
        kwargs: dict[str, Any] = {"family": family}
        for name in relevant:
            default = defaults[name].default
            if name in ("resolution", "segments"):
                kwargs[name] = _integer(data, name, default, "geometry")
            else:
                kwargs[name] = _number(data, name, default, "geometry")
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Obstacles, spawn, vehicle
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ObstacleSpec:
    """One solid obstacle in course coordinates.

    ``s`` is arclength along the centerline, ``d`` the signed lateral
    offset of the obstacle's center, ``radius`` its half-extent.  The
    compiler rejects placements that block the corridor, sit on the
    spawn/goal, or cover the centerline waypoints (see
    :mod:`repro.scenario.generate`).
    """

    s: float
    d: float
    radius: float = 0.4
    shape: str = "diamond"

    def __post_init__(self) -> None:
        if isinstance(self.s, bool) or not isinstance(self.s, (int, float)):
            raise ScenarioError(f"obstacle.s must be a number, got {self.s!r}")
        if isinstance(self.d, bool) or not isinstance(self.d, (int, float)):
            raise ScenarioError(f"obstacle.d must be a number, got {self.d!r}")
        if self.s < 0.0:
            raise ScenarioError(f"obstacle.s must be non-negative, got {self.s}")
        _check_range("obstacle.radius", self.radius, OBSTACLE_RADIUS_RANGE)
        if self.shape not in OBSTACLE_SHAPES:
            raise ScenarioError(
                f"obstacle.shape must be one of {OBSTACLE_SHAPES}, got {self.shape!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "s": float(self.s),
            "d": float(self.d),
            "radius": float(self.radius),
            "shape": self.shape,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ObstacleSpec":
        data = _require_mapping(data, "obstacle")
        _reject_unknown(data, {"s", "d", "radius", "shape"}, "obstacle")
        if "s" not in data or "d" not in data:
            raise ScenarioError("obstacle requires 's' and 'd'")
        shape = data.get("shape", "diamond")
        if not isinstance(shape, str):
            raise ScenarioError(f"obstacle.shape must be a string, got {shape!r}")
        return cls(
            s=_number(data, "s", 0.0, "obstacle"),
            d=_number(data, "d", 0.0, "obstacle"),
            radius=_number(data, "radius", 0.4, "obstacle"),
            shape=shape,
        )


@dataclass(frozen=True)
class SpawnSpec:
    """The initial pose, relative to the course origin."""

    angle_deg: float = 0.0
    lateral_offset: float = 0.0

    def __post_init__(self) -> None:
        _check_range("spawn.angle_deg", self.angle_deg, SPAWN_ANGLE_RANGE)
        if isinstance(self.lateral_offset, bool) or not isinstance(
            self.lateral_offset, (int, float)
        ):
            raise ScenarioError(
                f"spawn.lateral_offset must be a number, got {self.lateral_offset!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "angle_deg": float(self.angle_deg),
            "lateral_offset": float(self.lateral_offset),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SpawnSpec":
        data = _require_mapping(data, "spawn")
        _reject_unknown(data, {"angle_deg", "lateral_offset"}, "spawn")
        return cls(
            angle_deg=_number(data, "angle_deg", 0.0, "spawn"),
            lateral_offset=_number(data, "lateral_offset", 0.0, "spawn"),
        )


@dataclass(frozen=True)
class VehicleSpec:
    """The vehicle and software stack flying the scenario."""

    kind: str = "quadrotor"
    controller: str = "dnn"
    model: str = "resnet14"
    soc: str = "A"
    target_velocity: float = 3.0

    def __post_init__(self) -> None:
        if self.kind not in ("quadrotor", "car"):
            raise ScenarioError(
                f"vehicle.kind must be 'quadrotor' or 'car', got {self.kind!r}"
            )
        if self.controller not in ("dnn", "mpc", "fusion", "slam", "ros"):
            raise ScenarioError(
                f"vehicle.controller must be one of dnn/mpc/fusion/slam/ros, "
                f"got {self.controller!r}"
            )
        if not isinstance(self.model, str) or not self.model:
            raise ScenarioError(f"vehicle.model must be a non-empty string")
        if not isinstance(self.soc, str) or not self.soc:
            raise ScenarioError(f"vehicle.soc must be a non-empty string")
        _check_range(
            "vehicle.target_velocity", self.target_velocity, VELOCITY_RANGE
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "controller": self.controller,
            "model": self.model,
            "soc": self.soc,
            "target_velocity": float(self.target_velocity),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "VehicleSpec":
        data = _require_mapping(data, "vehicle")
        _reject_unknown(
            data, {"kind", "controller", "model", "soc", "target_velocity"}, "vehicle"
        )
        kwargs: dict[str, Any] = {}
        for name in ("kind", "controller", "model", "soc"):
            if name in data:
                value = data[name]
                if not isinstance(value, str):
                    raise ScenarioError(
                        f"vehicle.{name} must be a string, got {value!r}"
                    )
                kwargs[name] = value
        kwargs["target_velocity"] = _number(data, "target_velocity", 3.0, "vehicle")
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# The scenario document
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One complete ``rose-scenario/1`` document."""

    name: str
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    obstacles: tuple[ObstacleSpec, ...] = ()
    spawn: SpawnSpec = field(default_factory=SpawnSpec)
    noise: SensorNoiseProfile = field(default_factory=SensorNoiseProfile)
    faults: FaultPlan | None = None
    vehicle: VehicleSpec = field(default_factory=VehicleSpec)
    seed: int = 0
    cycles_per_sync: int = 10_000_000
    max_sim_time: float = 60.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ScenarioError(
                f"scenario name must match {_NAME_RE.pattern}, got {self.name!r}"
            )
        object.__setattr__(self, "obstacles", tuple(self.obstacles))
        if len(self.obstacles) > MAX_OBSTACLES:
            raise ScenarioError(
                f"at most {MAX_OBSTACLES} obstacles per scenario, "
                f"got {len(self.obstacles)}"
            )
        for part, cls_ in (
            (self.geometry, GeometrySpec),
            (self.spawn, SpawnSpec),
            (self.noise, SensorNoiseProfile),
            (self.vehicle, VehicleSpec),
        ):
            if not isinstance(part, cls_):
                raise ScenarioError(
                    f"expected {cls_.__name__}, got {type(part).__name__}"
                )
        for obstacle in self.obstacles:
            if not isinstance(obstacle, ObstacleSpec):
                raise ScenarioError(
                    f"obstacles must be ObstacleSpec, got {type(obstacle).__name__}"
                )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ScenarioError(
                f"faults must be a FaultPlan or null, got {type(self.faults).__name__}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ScenarioError(f"seed must be an integer, got {self.seed!r}")
        if not (0 <= self.seed < 2**32):
            raise ScenarioError(f"seed must lie in [0, 2**32), got {self.seed}")
        if isinstance(self.cycles_per_sync, bool) or not isinstance(
            self.cycles_per_sync, int
        ):
            raise ScenarioError(
                f"cycles_per_sync must be an integer, got {self.cycles_per_sync!r}"
            )
        _check_range("cycles_per_sync", self.cycles_per_sync, CYCLES_RANGE)
        _check_range("max_sim_time", self.max_sim_time, MAX_SIM_TIME_RANGE)
        # Cross-field: the spawn must clear both walls with margin.
        limit = self.geometry.width / 2.0 - SPAWN_WALL_CLEARANCE
        if abs(self.spawn.lateral_offset) > limit:
            raise ScenarioError(
                f"spawn.lateral_offset {self.spawn.lateral_offset} exceeds "
                f"the corridor's usable half-width {limit:.2f} "
                f"(width {self.geometry.width})"
            )

    # -- canonical document --------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SCENARIO_FORMAT,
            "name": self.name,
            "geometry": self.geometry.to_dict(),
            "obstacles": [obstacle.to_dict() for obstacle in self.obstacles],
            "spawn": self.spawn.to_dict(),
            "noise": self.noise.to_dict(),
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "vehicle": self.vehicle.to_dict(),
            "seed": int(self.seed),
            "cycles_per_sync": int(self.cycles_per_sync),
            "max_sim_time": float(self.max_sim_time),
        }

    def canonical_json(self) -> str:
        """The document in canonical form: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Any) -> "Scenario":
        data = _require_mapping(data, "scenario")
        if data.get("format") != SCENARIO_FORMAT:
            raise ScenarioError(
                f"unsupported scenario format {data.get('format')!r} "
                f"(expected {SCENARIO_FORMAT!r})"
            )
        _reject_unknown(
            data,
            {
                "format",
                "name",
                "geometry",
                "obstacles",
                "spawn",
                "noise",
                "faults",
                "vehicle",
                "seed",
                "cycles_per_sync",
                "max_sim_time",
            },
            "scenario",
        )
        name = data.get("name")
        if not isinstance(name, str):
            raise ScenarioError(f"scenario.name must be a string, got {name!r}")
        obstacles_data = data.get("obstacles", [])
        if not isinstance(obstacles_data, (list, tuple)):
            raise ScenarioError(
                f"scenario.obstacles must be a list, got {obstacles_data!r}"
            )
        faults_data = data.get("faults")
        faults: FaultPlan | None = None
        if faults_data is not None:
            try:
                faults = FaultPlan.from_dict(faults_data)
            except ConfigError as exc:
                raise ScenarioError(f"invalid fault plan: {exc}") from exc
        noise_data = data.get("noise")
        if noise_data is None:
            noise = SensorNoiseProfile()
        else:
            try:
                noise = SensorNoiseProfile.from_dict(noise_data)
            except (ValueError, TypeError) as exc:
                raise ScenarioError(f"invalid noise profile: {exc}") from exc
        spawn_data = data.get("spawn")
        vehicle_data = data.get("vehicle")
        return cls(
            name=name,
            geometry=GeometrySpec.from_dict(data.get("geometry", {})),
            obstacles=tuple(
                ObstacleSpec.from_dict(entry) for entry in obstacles_data
            ),
            spawn=SpawnSpec.from_dict(spawn_data) if spawn_data is not None else SpawnSpec(),
            noise=noise,
            faults=faults,
            vehicle=(
                VehicleSpec.from_dict(vehicle_data)
                if vehicle_data is not None
                else VehicleSpec()
            ),
            seed=_integer(data, "seed", 0, "scenario"),
            cycles_per_sync=_integer(
                data, "cycles_per_sync", 10_000_000, "scenario"
            ),
            max_sim_time=_number(data, "max_sim_time", 60.0, "scenario"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def with_name(self, name: str) -> "Scenario":
        return replace(self, name=name)


def scenario_key(scenario: Scenario) -> str:
    """Content address of a scenario: sha256 of its canonical JSON."""
    return hashlib.sha256(scenario.canonical_json().encode()).hexdigest()


def legacy_scenarios() -> dict[str, Scenario]:
    """The two paper worlds expressed as ``rose-scenario/1`` documents.

    These are the fuzzer's seed corpus and the `scenario-compile`
    oracle's ground truth: compiled through
    :func:`repro.scenario.generate.compile_config` they must reproduce
    the legacy ``tunnel`` / ``s-shape`` configurations exactly.
    """
    return {
        "tunnel": Scenario(
            name="tunnel",
            geometry=GeometrySpec(family="straight", length=50.0, width=3.2),
        ),
        "s-shape": Scenario(
            name="s-shape",
            geometry=GeometrySpec(
                family="sine",
                length=80.0,
                width=6.4,
                amplitude=10.0,
                periods=1.0,
                resolution=161,
            ),
        ),
    }
