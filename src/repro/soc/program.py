"""Target-program runtime API.

Programs for the simulated SoC are written as Python generators that
*yield timed operations*; the SoC execution engine interprets each op,
charges its cycle cost against the current token budget, and sends back
the op's result.  This style gives the model what it needs from a target
binary — a totally ordered stream of I/O and compute with cycle costs —
without simulating RISC-V instructions (see DESIGN.md).

Primitive operations (what the engine interprets):

``("delay", cycles)``
    idle / generic CPU work of known cost.
``("cpu", cycles)``
    CPU compute (accounted as busy, same timing as delay).
``("mmio_read", reg)``
    uncached read of a RoSE register; resolves to the register value.
    Popping ``RX_DATA`` additionally pays the payload copy cost.
``("mmio_write", reg, value)``
    uncached write; pushing ``TX_DATA`` pays the payload copy cost.
``("inference", session)``
    run one DNN inference; costs the session's report cycles and resolves
    to the :class:`~repro.dnn.runtime.InferenceReport`.

Programs normally use the composite helpers on :class:`TargetRuntime`
(``recv_packet`` / ``send_packet`` / ``run_inference``) rather than raw
ops.
"""

from __future__ import annotations

from typing import Generator

from repro.core.packets import DataPacket, PacketType
from repro.errors import TargetProgramError
from repro.soc import calib
from repro.soc.iodev import (
    REG_CYCLE,
    REG_RX_COUNT,
    REG_RX_DATA,
    REG_TX_DATA,
    REG_TX_SPACE,
)

#: Type alias for readability: a target program is a generator of ops.
TargetProgram = Generator


class TargetRuntime:
    """Helper library available to target programs.

    Stateless apart from configuration; all state lives in the SoC engine
    that interprets the yielded ops.
    """

    def __init__(
        self,
        poll_interval_cycles: int = calib.TARGET_POLL_INTERVAL_CYCLES,
        max_poll_interval_cycles: int = 1_000_000,
    ):
        if poll_interval_cycles <= 0:
            raise TargetProgramError("poll interval must be positive")
        if max_poll_interval_cycles < poll_interval_cycles:
            raise TargetProgramError("max poll interval below initial interval")
        self.poll_interval_cycles = poll_interval_cycles
        self.max_poll_interval_cycles = max_poll_interval_cycles

    # -- primitives ------------------------------------------------------
    def delay(self, cycles: int):
        yield ("delay", int(cycles))

    def compute(self, cycles: int):
        yield ("cpu", int(cycles))

    def mmio_read(self, reg: int):
        value = yield ("mmio_read", reg)
        return value

    def mmio_write(self, reg: int, value):
        yield ("mmio_write", reg, value)

    def current_cycle(self):
        value = yield from self.mmio_read(REG_CYCLE)
        return value

    # -- composite I/O helpers --------------------------------------------
    def recv_packet(self, timeout_cycles: int | None = None):
        """Block (polling) until an RX packet arrives; returns it.

        Returns ``None`` if ``timeout_cycles`` elapse first.  The polling
        loop is what couples the application to the synchronization
        granularity: data only appears at synchronization boundaries, so a
        request issued mid-period stalls until the next boundary
        (Section 5.5).  Polling backs off exponentially (the application
        sleeps between polls), bounding both target-side poll traffic and
        host-side simulation work during long stalls.
        """
        waited = 0
        interval = self.poll_interval_cycles
        while True:
            count = yield from self.mmio_read(REG_RX_COUNT)
            if count > 0:
                packet = yield from self.mmio_read(REG_RX_DATA)
                if packet is not None:
                    return packet
                # Lost the race to a concurrent task; fall through to wait.
            if timeout_cycles is not None and waited >= timeout_cycles:
                return None
            yield ("delay", interval)
            waited += interval
            interval = min(interval * 2, self.max_poll_interval_cycles)

    def recv_packet_of(self, ptype: PacketType, timeout_cycles: int | None = None):
        """Receive until a packet of ``ptype`` arrives, discarding others."""
        while True:
            packet = yield from self.recv_packet(timeout_cycles)
            if packet is None or packet.ptype == ptype:
                return packet

    def send_packet(self, packet: DataPacket):
        """Push a packet to the TX queue, waiting for space if needed."""
        while True:
            space = yield from self.mmio_read(REG_TX_SPACE)
            if space >= packet.payload_bytes:
                break
            yield ("delay", self.poll_interval_cycles)
        yield ("mmio_write", REG_TX_DATA, packet)

    def request_response(
        self,
        request: DataPacket,
        response_type: PacketType,
        timeout_cycles: int | None = None,
        retries: int = 0,
    ):
        """Send a request and wait for its typed response (RPC pattern).

        With a ``timeout_cycles`` deadline the request is *re-issued* up to
        ``retries`` times when the response fails to arrive — the recovery
        path for a response dropped on a faulty link — and ``None`` is
        returned once every attempt has timed out.  Without a deadline
        (the default) the wait is indefinite, exactly as before.
        """
        attempts = 0
        while True:
            yield from self.send_packet(request)
            response = yield from self.recv_packet_of(response_type, timeout_cycles)
            if response is not None or timeout_cycles is None:
                return response
            if attempts >= retries:
                return None
            attempts += 1

    # -- compute helpers ----------------------------------------------------
    def run_inference(self, session):
        """Run one DNN inference on its session; returns the report."""
        report = yield ("inference", session)
        return report
