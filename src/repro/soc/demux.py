"""Software demultiplexer for the shared RoSE RX queue.

The bridge exposes a single hardware RX FIFO.  When multiple tasks run on
the SoC, each waiting for different response types, a task that pops a
packet meant for its neighbour must not drop it — the standard solution is
a small driver layer that pops packets and sorts them into per-type
software mailboxes.  :class:`IoDemux` is that layer; tasks receive through
:meth:`IoDemux.recv` instead of the raw
:meth:`~repro.soc.program.TargetRuntime.recv_packet_of`.

The demux object is plain shared state between tasks (they are cooperative
coroutines on one core, so no locking is modeled beyond the serialization
the scheduler already provides).
"""

from __future__ import annotations

from collections import deque

from repro.core.packets import DataPacket, PacketType
from repro.soc.program import TargetRuntime


class IoDemux:
    """Per-type software mailboxes over the shared RX FIFO."""

    def __init__(self) -> None:
        self._mailboxes: dict[PacketType, deque[DataPacket]] = {}
        self.packets_sorted = 0

    def _mailbox(self, ptype: PacketType) -> deque:
        if ptype not in self._mailboxes:
            self._mailboxes[ptype] = deque()
        return self._mailboxes[ptype]

    def pending(self, ptype: PacketType) -> int:
        return len(self._mailboxes.get(ptype, ()))

    def deliver(self, packet: DataPacket) -> None:
        self._mailbox(packet.ptype).append(packet)
        self.packets_sorted += 1

    def take(self, ptype: PacketType) -> DataPacket:
        return self._mailbox(ptype).popleft()

    #: How long one raw-FIFO wait may run before the task re-checks its
    #: mailbox.  A task must never block indefinitely on the hardware
    #: queue: a neighbouring task may pop and sort this task's response
    #: while it waits, and only a mailbox re-check can observe that.
    POLL_CHUNK_CYCLES = 50_000

    def recv(
        self,
        rt: TargetRuntime,
        ptype: PacketType,
        timeout_cycles: int | None = None,
    ):
        """Generator helper: receive the next packet of ``ptype``.

        Pops the hardware queue (charging the normal MMIO/copy costs) and
        sorts every packet into its mailbox until the requested type is
        available.  Packets for other tasks are preserved in their
        mailboxes rather than dropped.  With ``timeout_cycles`` the wait is
        bounded and returns ``None`` on expiry (the caller's degradation
        path); the default wait is indefinite.
        """
        waited = 0
        while True:
            if self.pending(ptype):
                return self.take(ptype)
            if timeout_cycles is not None and waited >= timeout_cycles:
                return None
            packet = yield from rt.recv_packet(timeout_cycles=self.POLL_CHUNK_CYCLES)
            waited += self.POLL_CHUNK_CYCLES
            if packet is not None:
                self.deliver(packet)

    def request(
        self,
        rt: TargetRuntime,
        request_packet: DataPacket,
        response_type: PacketType,
        timeout_cycles: int | None = None,
    ):
        """Send a request and receive its (demultiplexed) typed response."""
        yield from rt.send_packet(request_packet)
        response = yield from self.recv(rt, response_type, timeout_cycles)
        return response
