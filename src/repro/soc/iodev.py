"""The RoSE MMIO I/O device on the SoC's system bus (Figure 4).

The target program talks to the RoSE bridge exclusively through this
register window.  Register semantics:

========== ======= ====================================================
offset      access  meaning
========== ======= ====================================================
RX_COUNT    read    number of complete packets waiting in the RX queue
RX_SIZE     read    payload bytes of the head RX packet (0 if empty)
RX_DATA     read    pop the head RX packet
TX_SPACE    read    free payload bytes in the TX queue
TX_DATA     write   push one packet into the TX queue
CYCLE       read    current SoC cycle (debug/telemetry)
========== ======= ====================================================

Modeling note: real hardware exposes byte/word-granularity FIFO registers;
the model moves whole packets per access and charges the per-byte copy
cost in the CPU model instead, which preserves timing without simulating
individual loads.
"""

from __future__ import annotations

from repro.core.bridge import RoseBridge
from repro.core.packets import DataPacket
from repro.errors import TargetProgramError

ROSE_MMIO_BASE = 0x1002_0000
ROSE_MMIO_SIZE = 0x1000

REG_RX_COUNT = 0x00
REG_RX_SIZE = 0x04
REG_RX_DATA = 0x08
REG_TX_SPACE = 0x0C
REG_TX_DATA = 0x10
REG_CYCLE = 0x14

_READABLE = {REG_RX_COUNT, REG_RX_SIZE, REG_RX_DATA, REG_TX_SPACE, REG_CYCLE}
_WRITABLE = {REG_TX_DATA}


class RoseIoDevice:
    """Register-window adapter between the SoC core and the bridge."""

    def __init__(self, bridge: RoseBridge):
        self.bridge = bridge
        self.reads = 0
        self.writes = 0
        self._cycle_source = lambda: 0

    def attach_cycle_source(self, fn) -> None:
        """Let the SoC provide the CYCLE register's value."""
        self._cycle_source = fn

    def read(self, reg: int):
        if reg not in _READABLE:
            raise TargetProgramError(f"read of non-readable RoSE register 0x{reg:02x}")
        self.reads += 1
        if reg == REG_RX_COUNT:
            return self.bridge.target_rx_count()
        if reg == REG_RX_SIZE:
            return self.bridge.target_rx_head_bytes()
        if reg == REG_RX_DATA:
            # An empty-FIFO read returns no packet rather than trapping:
            # with concurrent tasks, a neighbour may pop the queue between
            # this task's RX_COUNT check and its RX_DATA read (the classic
            # check-then-act race); drivers must re-check.
            if self.bridge.target_rx_count() == 0:
                return None
            return self.bridge.target_rx_pop()
        if reg == REG_TX_SPACE:
            return self.bridge.target_tx_space()
        return self._cycle_source()

    def write(self, reg: int, value) -> None:
        if reg not in _WRITABLE:
            raise TargetProgramError(f"write to non-writable RoSE register 0x{reg:02x}")
        if not isinstance(value, DataPacket):
            raise TargetProgramError(
                f"TX_DATA expects a DataPacket, got {type(value).__name__}"
            )
        self.writes += 1
        self.bridge.target_tx_push(value)
