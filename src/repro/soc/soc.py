"""SoC top level: configurations (Table 2) and the execution engine.

A :class:`Soc` owns a CPU timing model, optionally a Gemmini accelerator,
a system bus with the RoSE MMIO window, and one or more loaded target
programs.  :meth:`Soc.step` advances the machine by a bounded number of
cycles — the token-throttled interface FireSim exposes — interpreting the
programs' yielded ops (see :mod:`repro.soc.program`) and carrying
partially executed ops across step boundaries.

Multi-tenancy: the engine is a cooperative scheduler over tasks.  At any
instant at most one task occupies the core (CPU/MMIO/inference ops
serialize — the contention the paper's introduction motivates, citing
multi-tenant DNN execution); ``delay`` ops put a task to sleep without
holding the core, so sleeping tasks overlap freely.  With a single loaded
program the schedule degenerates to the obvious sequential execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bridge import BridgeConfig, RoseBridge
from repro.core.packets import DataPacket
from repro.errors import ConfigError, TargetProgramError
from repro.soc import calib
from repro.soc.bus import SystemBus
from repro.soc.cpu import CpuModel, core_by_name
from repro.soc.gemmini import GemminiModel
from repro.soc.iodev import (
    ROSE_MMIO_BASE,
    ROSE_MMIO_SIZE,
    REG_RX_DATA,
    REG_TX_DATA,
    RoseIoDevice,
)
from repro.soc.program import TargetRuntime


@dataclass(frozen=True)
class SocConfig:
    """One hardware configuration (Table 2)."""

    name: str
    cpu: str  # "boom" | "rocket"
    has_gemmini: bool
    frequency_hz: float = calib.SOC_FREQUENCY_HZ
    gemmini_dtype: str = "fp32"  # "fp32" (paper) | "int8" (Gemmini native)

    @property
    def description(self) -> str:
        accel = f"Gemmini({self.gemmini_dtype})" if self.has_gemmini else "None"
        cpu = {"boom": "3-wide BOOM", "rocket": "Rocket"}[self.cpu]
        return f"CPU: {cpu}, Accelerator: {accel}"


#: Table 2's three configurations.
CONFIG_A = SocConfig(name="A", cpu="boom", has_gemmini=True)
CONFIG_B = SocConfig(name="B", cpu="rocket", has_gemmini=True)
CONFIG_C = SocConfig(name="C", cpu="boom", has_gemmini=False)

_CONFIGS = {"A": CONFIG_A, "B": CONFIG_B, "C": CONFIG_C}


def soc_config(name: str) -> SocConfig:
    try:
        return _CONFIGS[name.upper()]
    except KeyError:
        raise ConfigError(f"unknown SoC configuration {name!r}; expected A, B or C") from None


@dataclass
class SocCounters:
    """Aggregate activity counters for one SoC instance."""

    mmio_reads: int = 0
    mmio_writes: int = 0
    inferences: int = 0
    cpu_busy_cycles: int = 0
    idle_cycles: int = 0


@dataclass
class TargetTask:
    """One target program scheduled on the SoC."""

    name: str
    generator: object
    send_value: object = None
    #: On-core op: (remaining cycles, completion effect, gemmini fraction).
    pending: tuple | None = None
    #: Absolute cycle the task sleeps until (``delay`` ops release the core).
    wake_at: int | None = None
    halted: bool = False
    busy_cycles: int = 0
    ops_executed: int = 0

    @property
    def runnable(self) -> bool:
        return not self.halted and self.pending is None

    def ready(self, now: int) -> bool:
        return self.runnable and (self.wake_at is None or self.wake_at <= now)


class Soc:
    """The simulated companion-computer SoC."""

    def __init__(self, config: SocConfig, bridge: RoseBridge | None = None):
        self.config = config
        self.cpu: CpuModel = core_by_name(config.cpu)
        self.bus = SystemBus()
        self.bus.register_region("rose-io", ROSE_MMIO_BASE, ROSE_MMIO_SIZE)
        self.gemmini: GemminiModel | None = (
            GemminiModel(bus=self.bus, dtype=config.gemmini_dtype)
            if config.has_gemmini
            else None
        )
        self.bridge = bridge or RoseBridge(BridgeConfig())
        self.iodev = RoseIoDevice(self.bridge)
        self.iodev.attach_cycle_source(lambda: self.cycle)
        self.cycle = 0
        self.counters = SocCounters()
        self.tasks: list[TargetTask] = []
        self._core_task: TargetTask | None = None
        self._rr_index = 0
        # Gemmini busy time accrues proportionally as an inference op's
        # cycles elapse (an op may span several token-bounded steps).
        self._gemmini_busy = 0.0

    # ------------------------------------------------------------------
    def load_program(
        self, program_factory: Callable[[TargetRuntime], "object"], name: str = "main"
    ) -> TargetTask:
        """Install the (single) target program, replacing any loaded set."""
        self.tasks = []
        self._core_task = None
        self._rr_index = 0
        return self.add_program(program_factory, name=name)

    def add_program(
        self, program_factory: Callable[[TargetRuntime], "object"], name: str
    ) -> TargetTask:
        """Add another program to run concurrently (cooperative tasks)."""
        if any(task.name == name for task in self.tasks):
            raise ConfigError(f"duplicate task name {name!r}")
        task = TargetTask(name=name, generator=program_factory(TargetRuntime()))
        self.tasks.append(task)
        return task

    def task(self, name: str) -> TargetTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise ConfigError(f"no task named {name!r}")

    @property
    def halted(self) -> bool:
        """True when every loaded task has finished."""
        return bool(self.tasks) and all(task.halted for task in self.tasks)

    @property
    def gemmini_busy_cycles(self) -> int:
        return int(self._gemmini_busy) if self.gemmini else 0

    @property
    def activity_factor(self) -> float:
        """Fraction of elapsed cycles the DNN accelerator was executing."""
        if self.cycle == 0:
            return 0.0
        return self.gemmini_busy_cycles / self.cycle

    # ------------------------------------------------------------------
    def _fetch_op(self, task: TargetTask) -> None:
        """Pull the task's next op and interpret its cost/effect.

        Effects that *produce* values (reads, inference reports) run at
        fetch time; their results are delivered to the program only after
        the op's cycles elapse.  Effects that *publish* state (TX writes)
        run at completion, so a packet becomes visible to the host no
        earlier than its copy finishes.
        """
        task.wake_at = None
        try:
            op = task.generator.send(task.send_value)
        except StopIteration:
            task.halted = True
            task.pending = None
            return
        task.send_value = None
        task.ops_executed += 1

        kind = op[0]
        if kind == "delay":
            cycles = int(op[1])
            if cycles < 0:
                raise TargetProgramError(f"negative delay of {cycles} cycles")
            task.wake_at = self.cycle + max(cycles, 1)
        elif kind == "cpu":
            cycles = int(op[1])
            if cycles < 0:
                raise TargetProgramError(f"negative cpu op of {cycles} cycles")
            task.pending = (max(cycles, 1), None, 0.0)
        elif kind == "mmio_read":
            reg = op[1]
            value = self.iodev.read(reg)
            self.counters.mmio_reads += 1
            cost = self.cpu.mmio_access_cycles
            if reg == REG_RX_DATA and isinstance(value, DataPacket):
                cost += self.cpu.copy_cycles(value.payload_bytes)
                cost += self.bus.transfer_cycles(value.payload_bytes)
            task.pending = (cost, lambda: value, 0.0)
        elif kind == "mmio_write":
            reg, value = op[1], op[2]
            cost = self.cpu.mmio_access_cycles
            if reg == REG_TX_DATA and isinstance(value, DataPacket):
                cost += self.cpu.copy_cycles(value.payload_bytes)
                cost += self.bus.transfer_cycles(value.payload_bytes)
            self.counters.mmio_writes += 1

            def effect(reg=reg, value=value):
                self.iodev.write(reg, value)

            task.pending = (cost, effect, 0.0)
        elif kind == "inference":
            session = op[1]
            report = session.run()
            self.counters.inferences += 1
            fraction = (
                report.gemmini_cycles / report.total_cycles if report.total_cycles else 0.0
            )
            task.pending = (report.total_cycles, lambda: report, fraction)
        else:
            raise TargetProgramError(f"unknown target op {kind!r}")

    def _next_ready(self) -> TargetTask | None:
        """Round-robin pick of a ready task."""
        n = len(self.tasks)
        if n == 1:
            # Fast path: single-program SoCs (no background tenants) are
            # the common case, and round-robin over one task is identity.
            task = self.tasks[0]
            return task if task.ready(self.cycle) else None
        for offset in range(n):
            task = self.tasks[(self._rr_index + offset) % n]
            if task.ready(self.cycle):
                self._rr_index = (self._rr_index + offset + 1) % n
                return task
        return None

    def _schedule_core(self) -> None:
        """Fetch ops from ready tasks until one claims the core (or none
        can).  Tasks whose next op is a ``delay`` go to sleep and the
        scheduler moves on."""
        while self._core_task is None:
            task = self._next_ready()
            if task is None:
                return
            self._fetch_op(task)
            if task.pending is not None:
                self._core_task = task

    def step(self, budget: int) -> int:
        """Advance exactly ``budget`` cycles (the FireSim token grant).

        Programs execute until the budget is exhausted; partially complete
        ops carry over to the next step.  When every task is asleep or
        halted, time elapses as idle (the RTL keeps ticking).  Returns the
        cycles advanced (always ``budget``).
        """
        if budget <= 0:
            raise ConfigError(f"step budget must be positive, got {budget}")
        if not self.tasks:
            raise TargetProgramError("no program loaded")
        end = self.cycle + budget
        while self.cycle < end:
            self._schedule_core()
            if self._core_task is not None:
                task = self._core_task
                cost, effect, fraction = task.pending
                advance = min(cost, end - self.cycle)
                self.cycle += advance
                self.counters.cpu_busy_cycles += advance
                task.busy_cycles += advance
                self._gemmini_busy += advance * fraction
                if advance == cost:
                    task.pending = None
                    self._core_task = None
                    if effect is not None:
                        result = effect()
                        if result is not None:
                            task.send_value = result
                else:
                    task.pending = (cost - advance, effect, fraction)
            else:
                # Core idle: sleep until the next wake-up (or the budget).
                wakes = [
                    task.wake_at
                    for task in self.tasks
                    if not task.halted and task.wake_at is not None
                ]
                target = min(wakes) if wakes else end
                advance = max(1, min(target, end) - self.cycle)
                advance = min(advance, end - self.cycle)
                if advance <= 0:
                    break
                self.cycle += advance
                self.counters.idle_cycles += advance
        return budget
