"""System bus model (TileLink-like, 128-bit).

The RoSE I/O module sits "onto the system bus" (Figure 4) and Gemmini is
constrained by "Gemmini's 128-bit maximum memory bus width"
(Section 4.2.1).  The bus model answers two questions: how many cycles a
burst transfer of N bytes takes, and which device owns an MMIO address.
It also keeps utilization counters so experiments can report bus traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc import calib


@dataclass(frozen=True)
class MmioRegion:
    """An address window claimed by a device."""

    name: str
    base: int
    size: int

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


class SystemBus:
    """Shared system interconnect with beat-level transfer accounting."""

    def __init__(
        self,
        width_bits: int = calib.BUS_WIDTH_BITS,
        latency_cycles: int = calib.BUS_LATENCY_CYCLES,
    ):
        if width_bits % 8 != 0 or width_bits <= 0:
            raise ConfigError(f"bus width must be a positive multiple of 8: {width_bits}")
        self.width_bits = width_bits
        self.bytes_per_beat = width_bits // 8
        self.latency_cycles = latency_cycles
        self._regions: list[MmioRegion] = []
        self.bytes_transferred = 0
        self.transfer_cycles_total = 0

    # -- address map -----------------------------------------------------
    def register_region(self, name: str, base: int, size: int) -> MmioRegion:
        region = MmioRegion(name, base, size)
        for existing in self._regions:
            if (
                region.base < existing.base + existing.size
                and existing.base < region.base + region.size
            ):
                raise ConfigError(
                    f"MMIO region {name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        return region

    def route(self, address: int) -> MmioRegion:
        for region in self._regions:
            if region.contains(address):
                return region
        raise ConfigError(f"no device at bus address 0x{address:08x}")

    # -- timing ------------------------------------------------------------
    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles for one burst transfer of ``nbytes``."""
        if nbytes < 0:
            raise ConfigError("transfer size must be non-negative")
        beats = math.ceil(nbytes / self.bytes_per_beat) if nbytes else 0
        cycles = self.latency_cycles + beats
        self.bytes_transferred += nbytes
        self.transfer_cycles_total += cycles
        return cycles

    def streaming_cycles(self, nbytes: int) -> float:
        """Cycles for a long DMA stream at full bus bandwidth (no per-burst
        latency; the DMA engine pipelines bursts)."""
        if nbytes < 0:
            raise ConfigError("transfer size must be non-negative")
        return nbytes / self.bytes_per_beat
