"""SoC + FireSim substrate (the Chipyard / FireSim substitute).

A cycle-level, discrete-event model of the companion-computer SoC the
paper evaluates: Rocket / BOOM core timing models, the Gemmini systolic
array, a system bus and DRAM model, and the RoSE MMIO I/O device.  The
:mod:`repro.soc.firesim` module wraps an SoC in the token-throttled
stepping interface FireSim exposes to the RoSE bridge, plus a host-side
wall-clock throughput model for the simulator-performance experiments.

Cycle-accuracy caveat: this is a calibrated timing model, not RTL — see
DESIGN.md ("Substitutions").
"""

from repro.soc.bus import SystemBus
from repro.soc.memory import DramModel, Sram
from repro.soc.cpu import CpuModel, boom_core, rocket_core
from repro.soc.gemmini import GemminiModel, default_gemmini
from repro.soc.soc import Soc, SocConfig, CONFIG_A, CONFIG_B, CONFIG_C, soc_config
from repro.soc.firesim import FireSimHost, HostPerfParams, simulation_throughput_mhz
from repro.soc.program import TargetRuntime

__all__ = [
    "SystemBus",
    "DramModel",
    "Sram",
    "CpuModel",
    "rocket_core",
    "boom_core",
    "GemminiModel",
    "default_gemmini",
    "Soc",
    "SocConfig",
    "CONFIG_A",
    "CONFIG_B",
    "CONFIG_C",
    "soc_config",
    "FireSimHost",
    "HostPerfParams",
    "simulation_throughput_mhz",
    "TargetRuntime",
]
