"""Gemmini systolic-array cycle model.

Models the accelerator the paper generates: "a 4x4 FP32 mesh to match
Gemmini's 128-bit maximum memory bus width ... weight-stationary dataflow
... a 256 KB scratchpad with a 64 KB accumulator" (Section 4.2.1).

A conv/linear operator is lowered to a GEMM of shape (M, K, N) — im2col
for convolutions — and costed as the max of compute and DMA time per the
usual roofline argument, plus a fixed per-op setup cost:

* compute: ``M*K*N`` MACs over a ``rows x cols`` mesh at a fitted
  sustained efficiency (pipeline fill/drain, edge tiles);
* DMA: weights streamed once, activations re-streamed once per weight
  pass when the layer's weights exceed scratchpad capacity (the
  weight-stationary penalty for large layers), outputs written back
  through the accumulator.

The model also reports busy cycles so the mission metrics can compute the
accelerator activity factor of Figure 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dnn.graph import FP32_BYTES, Node, OpType
from repro.errors import SchedulingError
from repro.soc import calib
from repro.soc.bus import SystemBus
from repro.soc.memory import DramModel, Sram


@dataclass(frozen=True)
class GemmCost:
    """Cycle breakdown of one operator on the accelerator."""

    compute_cycles: int
    dma_cycles: int
    setup_cycles: int

    @property
    def total_cycles(self) -> int:
        # Compute and DMA overlap (double-buffered scratchpad); setup does not.
        return max(self.compute_cycles, self.dma_cycles) + self.setup_cycles


class GemminiModel:
    """A weight-stationary systolic array with explicit SRAM capacities."""

    #: Supported element types: bytes per element and the mesh dimension
    #: that matches the 128-bit bus (16 bytes per beat), the same sizing
    #: argument Section 4.2.1 applies to the FP32 configuration.
    DTYPES = {"fp32": 4, "int8": 1}

    def __init__(
        self,
        mesh_rows: int | None = None,
        mesh_cols: int | None = None,
        scratchpad_bytes: int = calib.GEMMINI_SCRATCHPAD_BYTES,
        accumulator_bytes: int = calib.GEMMINI_ACCUMULATOR_BYTES,
        base_efficiency: float = calib.GEMMINI_BASE_EFFICIENCY,
        fill_overhead_rows: int = calib.GEMMINI_FILL_OVERHEAD_ROWS,
        op_setup_cycles: int = calib.GEMMINI_OP_SETUP_CYCLES,
        bus: SystemBus | None = None,
        dram: DramModel | None = None,
        dtype: str = "fp32",
    ):
        if dtype not in self.DTYPES:
            raise SchedulingError(
                f"dtype must be one of {sorted(self.DTYPES)}, got {dtype!r}"
            )
        self.dtype = dtype
        self.element_bytes = self.DTYPES[dtype]
        # Default mesh dimension matches the bus width for the element
        # type: 4x4 for FP32, 16x16 for INT8 (16 bytes per beat).
        default_mesh = 16 // self.element_bytes
        mesh_rows = default_mesh if mesh_rows is None else mesh_rows
        mesh_cols = default_mesh if mesh_cols is None else mesh_cols
        if mesh_rows < 1 or mesh_cols < 1:
            raise SchedulingError("mesh dimensions must be positive")
        if not (0.0 < base_efficiency <= 1.0):
            raise SchedulingError("base_efficiency must be in (0, 1]")
        if fill_overhead_rows < 0:
            raise SchedulingError("fill_overhead_rows must be non-negative")
        self.mesh_rows = mesh_rows
        self.mesh_cols = mesh_cols
        self.scratchpad = Sram("scratchpad", scratchpad_bytes)
        self.accumulator = Sram("accumulator", accumulator_bytes)
        self.base_efficiency = base_efficiency
        self.fill_overhead_rows = fill_overhead_rows
        self.op_setup_cycles = op_setup_cycles
        self.bus = bus or SystemBus()
        self.dram = dram or DramModel()
        self.busy_cycles = 0
        self.ops_executed = 0

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.mesh_rows * self.mesh_cols

    def efficiency(self, m: int) -> float:
        """Sustained fraction of peak for a GEMM with ``m`` output rows.

        Streaming ``m`` rows through a weight-stationary tile costs roughly
        ``m`` beats plus a fixed fill/drain overhead, so small-``m`` layers
        (late ResNet stages) waste most of the pipeline.
        """
        if m < 1:
            raise SchedulingError(f"GEMM row count must be positive, got {m}")
        return self.base_efficiency * m / (m + self.fill_overhead_rows)

    # ------------------------------------------------------------------
    def gemm_cost(self, m: int, k: int, n: int) -> GemmCost:
        """Cost of a GEMM: (m x k) activations times (k x n) weights."""
        if min(m, k, n) < 1:
            raise SchedulingError(f"degenerate GEMM shape ({m}, {k}, {n})")
        macs = m * k * n
        compute = math.ceil(macs / (self.peak_macs_per_cycle * self.efficiency(m)))

        weight_bytes = k * n * self.element_bytes
        act_bytes = m * k * self.element_bytes
        # Accumulation is wider than the element type; outputs write back
        # at 4 bytes regardless of dtype.
        out_bytes = m * n * FP32_BYTES
        # Weight-stationary: weights stream in once; when they exceed the
        # scratchpad the activations must be re-streamed per weight pass.
        passes = self.scratchpad.passes_required(weight_bytes)
        dma_bytes = weight_bytes + passes * act_bytes + out_bytes
        dma = math.ceil(self.dram.stream_cycles(dma_bytes))
        return GemmCost(
            compute_cycles=compute,
            dma_cycles=dma,
            setup_cycles=self.op_setup_cycles,
        )

    def node_cost(self, node: Node) -> GemmCost:
        """Cost of a CONV or LINEAR graph node."""
        if node.op == OpType.CONV:
            c_out, oh, ow = node.output_shape
            kernel = int(node.attrs["kernel"])
            # K = c_in * k^2, recovered from the parameter count.
            k = node.param_count // c_out
            if k * c_out != node.param_count:
                raise SchedulingError(f"inconsistent conv node {node.name!r}")
            return self.gemm_cost(m=oh * ow, k=k, n=c_out)
        if node.op == OpType.LINEAR:
            (n_out,) = node.output_shape
            k = (node.param_count - n_out) // n_out
            return self.gemm_cost(m=1, k=max(k, 1), n=n_out)
        raise SchedulingError(
            f"Gemmini cannot execute op {node.op.value!r} (node {node.name!r})"
        )

    def execute(self, node: Node) -> int:
        """Account one node's execution; returns its total cycles."""
        cost = self.node_cost(node)
        self.busy_cycles += cost.total_cycles
        self.ops_executed += 1
        return cost.total_cycles

    def reset_counters(self) -> None:
        self.busy_cycles = 0
        self.ops_executed = 0


def default_gemmini() -> GemminiModel:
    """The paper's configuration: 4x4 FP32, 256 KiB + 64 KiB SRAM."""
    return GemminiModel()


def int8_gemmini() -> GemminiModel:
    """Gemmini's native configuration: 16x16 INT8 at the same bus width."""
    return GemminiModel(dtype="int8")
