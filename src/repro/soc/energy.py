"""SoC energy model.

Figure 13's discussion motivates activity-factor reduction with energy:
"A lower activity factor frees system resources for other applications and
reduces energy consumption."  This module turns the cycle-level activity
accounting into energy estimates with a standard three-term model:

    E = P_leak * t_total
      + e_cpu_active  * cpu_busy_cycles
      + e_gemmini_active * gemmini_busy_cycles

Per-cycle active energies are order-of-magnitude figures for a 16 nm-class
embedded SoC at 1 GHz (tens of pJ/cycle for a superscalar core, a few
hundred pJ/cycle for a 16-MAC FP32 array at full tilt); they matter only
*relatively* — the experiments compare configurations, not absolute
joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc.soc import Soc


@dataclass(frozen=True)
class EnergyParams:
    """Per-component energy coefficients."""

    cpu_active_pj_per_cycle: float = 60.0
    gemmini_active_pj_per_cycle: float = 250.0
    leakage_mw: float = 50.0
    frequency_hz: float = 1e9

    def __post_init__(self) -> None:
        if min(
            self.cpu_active_pj_per_cycle,
            self.gemmini_active_pj_per_cycle,
            self.leakage_mw,
        ) < 0:
            raise ConfigError("energy coefficients must be non-negative")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one mission / workload run (millijoules)."""

    cpu_mj: float
    gemmini_mj: float
    leakage_mj: float

    @property
    def total_mj(self) -> float:
        return self.cpu_mj + self.gemmini_mj + self.leakage_mj

    @property
    def dynamic_mj(self) -> float:
        return self.cpu_mj + self.gemmini_mj

    def average_power_mw(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise ConfigError("duration must be positive")
        return self.total_mj / duration_s


def estimate_energy(
    total_cycles: int,
    cpu_busy_cycles: int,
    gemmini_busy_cycles: int,
    params: EnergyParams | None = None,
) -> EnergyReport:
    """Energy of a workload described by its cycle counters."""
    params = params or EnergyParams()
    if total_cycles < 0 or cpu_busy_cycles < 0 or gemmini_busy_cycles < 0:
        raise ConfigError("cycle counts must be non-negative")
    if cpu_busy_cycles > total_cycles or gemmini_busy_cycles > total_cycles:
        raise ConfigError("busy cycles cannot exceed total cycles")
    duration_s = total_cycles / params.frequency_hz
    return EnergyReport(
        cpu_mj=cpu_busy_cycles * params.cpu_active_pj_per_cycle * 1e-9,
        gemmini_mj=gemmini_busy_cycles * params.gemmini_active_pj_per_cycle * 1e-9,
        leakage_mj=params.leakage_mw * duration_s,
    )


def soc_energy(soc: Soc, params: EnergyParams | None = None) -> EnergyReport:
    """Energy of everything a :class:`Soc` instance has executed so far."""
    return estimate_energy(
        total_cycles=soc.cycle,
        cpu_busy_cycles=soc.counters.cpu_busy_cycles,
        gemmini_busy_cycles=soc.gemmini_busy_cycles,
        params=params,
    )
