"""Memory models: DRAM and on-chip SRAM (scratchpad / accumulator).

The DRAM model turns byte counts into stream cycles at a configured
bandwidth; the SRAM model enforces capacity, which the Gemmini tiler uses
to decide how many passes a layer's weights require (Section 4.2.1's
256 KiB scratchpad / 64 KiB accumulator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc import calib


@dataclass
class DramModel:
    """Off-chip memory reached through the memory controller."""

    bandwidth_bytes_per_cycle: float = calib.DRAM_BANDWIDTH_BYTES_PER_CYCLE
    latency_cycles: int = calib.DRAM_LATENCY_CYCLES

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("DRAM bandwidth must be positive")

    def stream_cycles(self, nbytes: int) -> float:
        """Cycles to stream ``nbytes`` sequentially (DMA-style)."""
        if nbytes < 0:
            raise ConfigError("stream size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_cycles + nbytes / self.bandwidth_bytes_per_cycle

    def random_access_cycles(self, accesses: int) -> float:
        """Cycles for ``accesses`` independent (non-streaming) requests."""
        if accesses < 0:
            raise ConfigError("access count must be non-negative")
        return accesses * self.latency_cycles


class Sram:
    """A fixed-capacity on-chip memory with simple bump allocation.

    The allocator exists so the Gemmini tiler can *prove* a tiling fits:
    allocation failures surface as :class:`ConfigError` rather than as
    silently-wrong cycle counts.
    """

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError(f"SRAM {name!r} capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._allocated = 0

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._allocated

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns the offset."""
        if nbytes < 0:
            raise ConfigError("allocation size must be non-negative")
        if nbytes > self.free_bytes:
            raise ConfigError(
                f"SRAM {self.name!r} overflow: requested {nbytes}, "
                f"free {self.free_bytes} of {self.capacity_bytes}"
            )
        offset = self._allocated
        self._allocated += nbytes
        return offset

    def reset(self) -> None:
        self._allocated = 0

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.capacity_bytes

    def passes_required(self, nbytes: int) -> int:
        """How many residency passes a buffer of ``nbytes`` needs."""
        if nbytes <= 0:
            return 1
        return max(1, math.ceil(nbytes / self.capacity_bytes))
