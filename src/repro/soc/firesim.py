"""FireSim host model: token-throttled stepping + throughput accounting.

Two concerns live here:

* :class:`FireSimHost` is the FireSim-side *process* of Figure 5: it owns
  the simulated SoC and the RoSE bridge, receives synchronization and data
  packets from the transport, steps the RTL simulation by the granted
  cycle budget, and returns SoC-originated data packets plus a SYNC_DONE.
* :class:`HostPerfParams` / :func:`simulation_throughput_mhz` model the
  *wall-clock* performance of the co-simulation (Figure 15): the FPGA
  advances target cycles at a bounded rate, the environment renders frames
  at a bounded rate, and every synchronization pays a host overhead
  (driver polling + RPC round trips).  Throughput is target-cycles per
  wall-second; coarse granularity amortizes the overhead, fine granularity
  pays it every period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packets import DataPacket, PacketType, sync_done
from repro.core.transport import Transport
from repro.errors import SyncError
from repro.soc.soc import Soc


class FireSimHost:
    """Bridge driver + simulation stepping on the FireSim side.

    ``service()`` performs all host work that is currently possible:
    ingest packets from the transport (programming the bridge control
    unit, injecting data into the RX queue), execute any granted steps,
    and emit collected TX data plus step-completion packets.  The
    synchronizer calls it once per polling round; in a distributed
    deployment the same loop runs in the FireSim process.
    """

    def __init__(self, soc: Soc, transport: Transport):
        self.soc = soc
        self.bridge = soc.bridge
        self.transport = transport
        self.steps_completed = 0
        self.shutdown_requested = False
        self.duplicate_grants = 0
        self._pending_grants: list[int] = []
        self._deferred_inject: list[DataPacket] = []
        #: (step index, cycles executed) of the last completed step — a
        #: regranted step is re-acknowledged from here, never re-executed.
        self._last_done: tuple[int, int] | None = None

    def service(self) -> None:
        """Run all currently possible host-side work."""
        self._ingest()
        self._execute_grants()

    # ------------------------------------------------------------------
    def _ingest(self) -> None:
        for packet in self.transport.drain():
            if packet.ptype == PacketType.SYNC_SET_STEPS:
                cycles, frames = packet.values
                self.bridge.set_steps(cycles, frames)
            elif packet.ptype == PacketType.SYNC_GRANT:
                self._pending_grants.append(int(packet.values[0]))
            elif packet.ptype == PacketType.SYNC_RESET:
                self._pending_grants.clear()
            elif packet.ptype == PacketType.SYNC_SHUTDOWN:
                self.shutdown_requested = True
            elif packet.ptype.is_data:
                self._inject(packet)
            else:
                raise SyncError(f"unexpected packet {packet.ptype.name} at FireSim host")

    def _inject(self, packet: DataPacket) -> None:
        # Retry deferred packets first to preserve ordering.
        self._deferred_inject.append(packet)
        still_deferred: list[DataPacket] = []
        for pending in self._deferred_inject:
            if still_deferred or not self.bridge.host_inject(pending):
                still_deferred.append(pending)
        self._deferred_inject = still_deferred

    def _execute_grants(self) -> None:
        while self._pending_grants:
            step_index = self._pending_grants.pop(0)
            if self._last_done is not None and step_index <= self._last_done[0]:
                # The synchronizer's watchdog re-issued a grant because a
                # packet was lost: acknowledge again, never step twice.
                self.duplicate_grants += 1
                if step_index == self._last_done[0]:
                    self.transport.send(sync_done(*self._last_done))
                continue
            budget = self.bridge.grant_step()
            executed = self.soc.step(budget)
            for packet in self.bridge.host_collect():
                self.transport.send(packet)
            self.transport.send(sync_done(step_index, executed))
            self._last_done = (step_index, executed)
            self.steps_completed += 1
            # Injection may have been blocked on queue space freed by the
            # step; retry now.
            if self._deferred_inject:
                deferred, self._deferred_inject = self._deferred_inject, []
                for packet in deferred:
                    self._inject(packet)


# ---------------------------------------------------------------------------
# Wall-clock performance model (Figure 15)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HostPerfParams:
    """Wall-clock characteristics of one deployment.

    ``fpga_sim_rate_mhz`` is the free-running FPGA simulation rate (target
    MHz); ``sync_overhead_s`` the per-synchronization host cost (bridge
    driver polling, synchronizer scheduling, network RPC);
    ``env_frame_wall_s`` the environment simulator's wall time per frame
    (render + physics).
    """

    name: str
    fpga_sim_rate_mhz: float = 30.0
    sync_overhead_s: float = 2.0e-3
    env_frame_wall_s: float = 8.0e-3
    target_frequency_hz: float = 1e9
    env_frame_rate_hz: float = 60.0

    def __post_init__(self) -> None:
        if self.fpga_sim_rate_mhz <= 0 or self.sync_overhead_s < 0:
            raise SyncError("invalid host performance parameters")


def wall_time_per_sync(params: HostPerfParams, cycles_per_sync: int) -> float:
    """Wall seconds one synchronization period takes.

    The FPGA and the environment run concurrently within a period
    (Algorithm 1 allocates tokens to both, then polls both), so the
    period's wall time is the max of the two plus the fixed overhead.
    """
    if cycles_per_sync <= 0:
        raise SyncError("cycles_per_sync must be positive")
    fpga_s = cycles_per_sync / (params.fpga_sim_rate_mhz * 1e6)
    target_seconds = cycles_per_sync / params.target_frequency_hz
    frames = max(1.0, target_seconds * params.env_frame_rate_hz)
    env_s = frames * params.env_frame_wall_s
    return max(fpga_s, env_s) + params.sync_overhead_s


def simulation_throughput_mhz(
    params: HostPerfParams, cycles_per_sync: int, with_env: bool = True
) -> float:
    """Simulation throughput in target MHz at one sync granularity.

    ``with_env=False`` models the sync-only microbenchmark (no environment
    stepping), the upper curve of the paper's performance measurement.
    """
    if with_env:
        wall = wall_time_per_sync(params, cycles_per_sync)
    else:
        fpga_s = cycles_per_sync / (params.fpga_sim_rate_mhz * 1e6)
        wall = fpga_s + params.sync_overhead_s
    return cycles_per_sync / wall / 1e6
