"""Calibration constants for the SoC cycle models.

Every constant here is either a structural parameter taken directly from
the paper's experimental setup (Section 4.2.1) or a fitted efficiency
factor anchored to the paper's own measurements (Table 3 and Section 5.1).
Nothing else in the package hardcodes timing numbers.

Structural parameters (from the paper):

* Gemmini: 4x4 FP32 mesh, weight-stationary dataflow, 256 KiB scratchpad,
  64 KiB accumulator, 128-bit maximum memory bus width.
* SoC frequency: 1 GHz (Figure 6's example models a 1 GHz SoC).

Fitted parameters (anchored to Table 3 / Section 5.1):

* ``GEMMINI_COMPUTE_EFFICIENCY``: fraction of the 16 MAC/cycle peak the
  mesh sustains across tiling, pipeline fill/drain and dependent-layer
  stalls.  Fit so ResNet14 on BOOM+Gemmini lands near Table 3's 85 ms.
* CPU per-element costs: cycles for one FP32 element of a CPU-executed op
  (batchnorm / relu / residual add / pooling), fit to the BOOM-vs-Rocket
  latency gap in Table 3 (the Gemmini work is identical across cores, so
  the gap is all CPU-side).
* ``macs_per_cycle`` (CPU fallback): FP32 MAC throughput of ONNX-Runtime
  conv kernels on a scalar core; fit so ResNet14 on a BOOM-only SoC costs
  about 6 G cycles, matching Section 5.1's observed "6-second latency
  between an image request and control target update".
"""

from __future__ import annotations

# --- Clocking -------------------------------------------------------------
SOC_FREQUENCY_HZ: float = 1_000_000_000.0  # 1 GHz target clock

# --- System bus / DRAM (128-bit = 16 bytes per beat) -----------------------
BUS_WIDTH_BITS: int = 128
BUS_LATENCY_CYCLES: int = 10
DRAM_BANDWIDTH_BYTES_PER_CYCLE: float = 16.0
DRAM_LATENCY_CYCLES: int = 30

# --- Gemmini (Section 4.2.1) -----------------------------------------------
GEMMINI_MESH_ROWS: int = 4
GEMMINI_MESH_COLS: int = 4
GEMMINI_SCRATCHPAD_BYTES: int = 256 * 1024
GEMMINI_ACCUMULATOR_BYTES: int = 64 * 1024
# Sustained efficiency of the mesh is shape-dependent: streaming M output
# rows through a weight-stationary tile costs ~M + fill/drain cycles, so
# small-M layers (late ResNet stages, where oh*ow shrinks to 16) waste most
# of the pipeline:  eff(M) = BASE * M / (M + FILL).  BASE and FILL are
# fitted jointly with the CPU constants against Table 3.
GEMMINI_BASE_EFFICIENCY: float = 0.60
GEMMINI_FILL_OVERHEAD_ROWS: int = 16
GEMMINI_OP_SETUP_CYCLES: int = 2_000  # config + DMA descriptor setup per op

# --- CPU cores --------------------------------------------------------------
# BOOM: 3-wide out-of-order (SonicBOOM).  Rocket: 5-stage in-order scalar.
BOOM_ELEM_OP_CYCLES: float = 10.0
ROCKET_ELEM_OP_CYCLES: float = 30.0

BOOM_MACS_PER_CYCLE: float = 0.075  # CPU-only FP32 conv throughput (fitted)
ROCKET_MACS_PER_CYCLE: float = 0.025

# Sustained FP32 throughput of hand-written scalar control code (MPC,
# SLAM): far better than ONNX conv kernels (cache-resident, no framework
# overhead), far below peak issue width.
BOOM_SCALAR_FLOPS_PER_CYCLE: float = 1.2
ROCKET_SCALAR_FLOPS_PER_CYCLE: float = 0.4

BOOM_DISPATCH_CYCLES: int = 200_000  # ONNX-Runtime per-node overhead
ROCKET_DISPATCH_CYCLES: int = 250_000

BOOM_MMIO_ACCESS_CYCLES: int = 30  # uncached load/store across the bus
ROCKET_MMIO_ACCESS_CYCLES: int = 90

BOOM_COPY_CYCLES_PER_BYTE: float = 1.0  # packet payload copy in/out of queues
ROCKET_COPY_CYCLES_PER_BYTE: float = 3.0

# Per-inference fixed cost: image unpack + FP32 normalization +
# ONNX-Runtime session overhead.  Dominated by scalar-FP image conversion,
# hence the large Rocket/BOOM gap.
BOOM_SESSION_FIXED_CYCLES: int = 15_000_000
ROCKET_SESSION_FIXED_CYCLES: int = 17_000_000

# Polling interval of the target application's packet-wait loop.
TARGET_POLL_INTERVAL_CYCLES: int = 2_000
