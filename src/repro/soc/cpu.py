"""CPU core timing models: Rocket (in-order) and SonicBOOM (3-wide OoO).

The paper generates "two types of CPU cores ... a Rocket CPU, a 5-stage
in-order scalar processor core generator, and for the superscalar
out-of-order CPU we use SonicBOOM" (Section 4.2.1).  The cycle model
characterizes each core by the throughputs the workloads exercise:

* per-element cost of CPU-executed tensor ops (batchnorm, relu, residual
  add, pooling, softmax),
* FP32 MAC throughput of conv/gemm kernels when no accelerator is present,
* per-operator runtime dispatch overhead (the ONNX-Runtime node walk),
* uncached MMIO access latency and packet-copy throughput (the RoSE I/O
  path), and
* a fixed per-inference session cost (image unpack + normalization).

Constants live in :mod:`repro.soc.calib` with their calibration rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc import calib


@dataclass(frozen=True)
class CpuModel:
    """Timing characteristics of one core."""

    name: str
    kind: str  # "in-order" | "out-of-order"
    issue_width: int
    elem_op_cycles: float
    macs_per_cycle: float
    dispatch_cycles: int
    mmio_access_cycles: int
    copy_cycles_per_byte: float
    session_fixed_cycles: int
    scalar_flops_per_cycle: float = 1.0
    frequency_hz: float = calib.SOC_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.elem_op_cycles <= 0 or self.macs_per_cycle <= 0:
            raise ConfigError(f"CPU {self.name!r} has non-positive throughput")
        if self.issue_width < 1:
            raise ConfigError(f"CPU {self.name!r} issue width must be >= 1")

    # -- kernel cost models ----------------------------------------------
    def elementwise_cycles(self, elements: int) -> int:
        """Cycles for an element-wise tensor op over ``elements`` values."""
        if elements < 0:
            raise ConfigError("element count must be non-negative")
        return math.ceil(elements * self.elem_op_cycles)

    def matmul_cycles(self, macs: int) -> int:
        """Cycles for a conv/gemm of ``macs`` multiply-accumulates on the
        CPU (the no-accelerator fallback path)."""
        if macs < 0:
            raise ConfigError("MAC count must be non-negative")
        return math.ceil(macs / self.macs_per_cycle)

    def copy_cycles(self, nbytes: int) -> int:
        """Cycles to copy a packet payload to/from the I/O queues."""
        if nbytes < 0:
            raise ConfigError("copy size must be non-negative")
        return math.ceil(nbytes * self.copy_cycles_per_byte)

    def scalar_flops_cycles(self, flops: int) -> int:
        """Cycles for hand-written scalar FP32 control code (MPC / SLAM)."""
        if flops < 0:
            raise ConfigError("FLOP count must be non-negative")
        return math.ceil(flops / self.scalar_flops_per_cycle)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz


def boom_core() -> CpuModel:
    """SonicBOOM: 3-wide superscalar out-of-order core."""
    return CpuModel(
        name="boom",
        kind="out-of-order",
        issue_width=3,
        elem_op_cycles=calib.BOOM_ELEM_OP_CYCLES,
        macs_per_cycle=calib.BOOM_MACS_PER_CYCLE,
        dispatch_cycles=calib.BOOM_DISPATCH_CYCLES,
        mmio_access_cycles=calib.BOOM_MMIO_ACCESS_CYCLES,
        copy_cycles_per_byte=calib.BOOM_COPY_CYCLES_PER_BYTE,
        session_fixed_cycles=calib.BOOM_SESSION_FIXED_CYCLES,
        scalar_flops_per_cycle=calib.BOOM_SCALAR_FLOPS_PER_CYCLE,
    )


def rocket_core() -> CpuModel:
    """Rocket: 5-stage in-order scalar core."""
    return CpuModel(
        name="rocket",
        kind="in-order",
        issue_width=1,
        elem_op_cycles=calib.ROCKET_ELEM_OP_CYCLES,
        macs_per_cycle=calib.ROCKET_MACS_PER_CYCLE,
        dispatch_cycles=calib.ROCKET_DISPATCH_CYCLES,
        mmio_access_cycles=calib.ROCKET_MMIO_ACCESS_CYCLES,
        copy_cycles_per_byte=calib.ROCKET_COPY_CYCLES_PER_BYTE,
        session_fixed_cycles=calib.ROCKET_SESSION_FIXED_CYCLES,
        scalar_flops_per_cycle=calib.ROCKET_SCALAR_FLOPS_PER_CYCLE,
    )


_CORES = {"boom": boom_core, "rocket": rocket_core}


def core_by_name(name: str) -> CpuModel:
    try:
        return _CORES[name]()
    except KeyError:
        raise ConfigError(f"unknown core {name!r}; available: {sorted(_CORES)}") from None
