"""repro.obs — unified observability: metrics, flight recorder, exporters.

See DESIGN.md §9 for the metric catalog, determinism rules, and the
``rose-obs/1`` artifact schema.
"""

from repro.obs.aggregate import merge_snapshots
from repro.obs.declarations import (
    COVERAGE_EXEMPT,
    DECLARED_METRICS,
    MISSION_METRICS,
    SERVE_METRICS,
    SWEEP_METRICS,
    mission_registry,
    serve_registry,
    spec_for,
    sweep_registry,
)
from repro.obs.export import parse_prometheus, to_prometheus
from repro.obs.metrics import MetricSpec, MetricsRegistry, exercised_metrics
from repro.obs.recorder import OBS_FORMAT, FlightRecord, trace_summary
from repro.obs.schema import OBS_SCHEMA, validate_artifact

__all__ = [
    "COVERAGE_EXEMPT",
    "DECLARED_METRICS",
    "FlightRecord",
    "MISSION_METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "OBS_FORMAT",
    "OBS_SCHEMA",
    "SERVE_METRICS",
    "SWEEP_METRICS",
    "exercised_metrics",
    "merge_snapshots",
    "mission_registry",
    "serve_registry",
    "sweep_registry",
    "parse_prometheus",
    "spec_for",
    "to_prometheus",
    "trace_summary",
    "validate_artifact",
]
