"""JSON Schema for the ``rose-obs/1`` artifact, plus a validator.

``validate_artifact`` prefers the real ``jsonschema`` library when it
is importable and falls back to a structural validator otherwise — CI
installs only the project's dev extras, which deliberately do not pull
in jsonschema, so the fallback path is the one CI exercises.
"""

from __future__ import annotations

from typing import Any

from repro.obs.recorder import OBS_FORMAT

OBS_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "rose-obs/1 mission observability artifact",
    "type": "object",
    "required": ["format", "label", "config_key", "metrics", "stage_timings"],
    "additionalProperties": False,
    "properties": {
        "format": {"const": OBS_FORMAT},
        "label": {"type": "string"},
        "config_key": {"type": "string"},
        "stage_timings": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "trace": {
            "type": "object",
            "required": ["events", "by_category"],
            "additionalProperties": False,
            "properties": {
                "events": {"type": "integer", "minimum": 0},
                "by_category": {
                    "type": "object",
                    "additionalProperties": {"type": "integer", "minimum": 0},
                },
            },
        },
        "metrics": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["kind", "labels", "series"],
                "if": {"properties": {"kind": {"const": "histogram"}}},
                "then": {
                    "required": ["buckets"],
                    "properties": {
                        "series": {
                            "items": {
                                "required": ["labels", "buckets", "sum", "count"]
                            }
                        }
                    },
                },
                "else": {
                    "properties": {
                        "series": {"items": {"required": ["labels", "value"]}}
                    }
                },
                "properties": {
                    "kind": {"enum": ["counter", "gauge", "histogram"]},
                    "labels": {"type": "array", "items": {"type": "string"}},
                    "buckets": {"type": "array", "items": {"type": "number"}},
                    "series": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["labels"],
                            "properties": {
                                "labels": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                                "value": {"type": "number"},
                                "buckets": {
                                    "type": "array",
                                    "items": {"type": "number"},
                                },
                                "sum": {"type": "number"},
                                "count": {"type": "integer", "minimum": 0},
                            },
                        },
                    },
                },
            },
        },
    },
}


def _structural_errors(data: Any) -> list[str]:
    """Hand-rolled validation mirroring OBS_SCHEMA's constraints."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["artifact is not a JSON object"]
    for key in ("format", "label", "config_key", "metrics", "stage_timings"):
        if key not in data:
            errors.append(f"missing required key {key!r}")
    if errors:
        return errors
    if data["format"] != OBS_FORMAT:
        errors.append(f"format is {data['format']!r}, expected {OBS_FORMAT!r}")
    for key in ("label", "config_key"):
        if not isinstance(data[key], str):
            errors.append(f"{key} must be a string")
    if not isinstance(data["stage_timings"], dict) or any(
        not isinstance(v, (int, float)) for v in data["stage_timings"].values()
    ):
        errors.append("stage_timings must map stage names to numbers")
    metrics = data["metrics"]
    if not isinstance(metrics, dict):
        return errors + ["metrics must be an object"]
    for name, entry in metrics.items():
        prefix = f"metrics[{name!r}]"
        if not isinstance(entry, dict):
            errors.append(f"{prefix} is not an object")
            continue
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            errors.append(f"{prefix}.kind is invalid: {kind!r}")
            continue
        labels = entry.get("labels")
        if not isinstance(labels, list):
            errors.append(f"{prefix}.labels must be a list")
            continue
        series = entry.get("series")
        if not isinstance(series, list):
            errors.append(f"{prefix}.series must be a list")
            continue
        edges = entry.get("buckets")
        if kind == "histogram" and not isinstance(edges, list):
            errors.append(f"{prefix} is a histogram without bucket edges")
            continue
        for i, row in enumerate(series):
            where = f"{prefix}.series[{i}]"
            if not isinstance(row, dict) or not isinstance(row.get("labels"), dict):
                errors.append(f"{where} must be an object with labels")
                continue
            if sorted(row["labels"]) != sorted(labels):
                errors.append(f"{where} labels do not match declared label names")
            if kind == "histogram":
                counts = row.get("buckets")
                if not isinstance(counts, list) or (
                    isinstance(edges, list) and len(counts) != len(edges) + 1
                ):
                    errors.append(
                        f"{where} must carry len(edges)+1 bucket counts"
                    )
                if not isinstance(row.get("count"), int):
                    errors.append(f"{where}.count must be an integer")
                if not isinstance(row.get("sum"), (int, float)):
                    errors.append(f"{where}.sum must be a number")
            else:
                if not isinstance(row.get("value"), (int, float)):
                    errors.append(f"{where}.value must be a number")
    return errors


def validate_artifact(data: Any) -> list[str]:
    """Validate a parsed ``rose-obs/1`` document; return error strings.

    An empty list means the artifact is valid.  Uses ``jsonschema``
    when available, otherwise the structural fallback.
    """
    try:
        import jsonschema
    except ImportError:
        return _structural_errors(data)
    validator_cls = jsonschema.validators.validator_for(OBS_SCHEMA)
    validator = validator_cls(OBS_SCHEMA)
    return [
        f"{'/'.join(str(p) for p in err.absolute_path) or '<root>'}: {err.message}"
        for err in sorted(validator.iter_errors(data), key=lambda e: str(e.absolute_path))
    ]
