"""Deterministic metrics: labeled counters, gauges, fixed-bucket histograms.

The observability layer measures the co-simulation the way the paper's
figures need it measured — per-component counts, totals, and latency
distributions — while honouring the repository's determinism contract:

* every value is derived from *simulated* behaviour (cycles, packets,
  steps), never from host wall clock (lint rule DET002 applies here as
  everywhere);
* histogram bucket edges are declared up front (in
  :mod:`repro.obs.declarations`), so two identical runs produce
  byte-identical snapshots — there is no adaptive binning;
* snapshots are plain JSON-able dicts in sorted key/label order, so
  they diff, hash, and merge deterministically.

A :class:`MetricsRegistry` is *per mission*: the co-simulation creates
one, threads it through the synchronizer, transports, fault injector,
SoC, and application layer, and snapshots it into the mission's
:class:`~repro.obs.recorder.FlightRecord`.  Sweep-level aggregation
merges those snapshots (:mod:`repro.obs.aggregate`).

Merge semantics (chosen so shard merges are associative and
commutative): counters and histograms *sum*; gauges also sum — a merged
snapshot is a fleet total, not a last-writer-wins scrape.  Code that
needs a per-mission gauge reads the per-mission record.

Counter values written through :meth:`MetricsRegistry.inc` /
:meth:`MetricsRegistry.advance_to` stay ``int`` end to end — the legacy
stats views (``SyncStats.packets_dropped`` etc.) read them back into
``fault_summary()``, which feeds the canonical mission payload, so an
``int`` → ``float`` coercion here would silently change every golden
signature.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ConfigError

#: The supported metric kinds.
KINDS = ("counter", "gauge", "histogram")

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_LabelKey = tuple[str, ...]


@dataclass(frozen=True)
class MetricSpec:
    """The declaration of one metric: name, kind, labels, bucket edges.

    Specs are data, not behaviour — the single catalog in
    :mod:`repro.obs.declarations` is the only module that should
    construct them (enforced by lint rule OBS001).
    """

    name: str
    kind: str
    help: str
    labels: tuple[str, ...] = ()
    #: Histogram bucket upper edges, strictly increasing.  Observations
    #: land in the first bucket whose edge is >= the value; values above
    #: the last edge land in the implicit +Inf overflow bucket.
    buckets: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ConfigError(f"invalid metric name {self.name!r}")
        if self.kind not in KINDS:
            raise ConfigError(
                f"metric kind must be one of {KINDS}, got {self.kind!r}"
            )
        for label in self.labels:
            if not _NAME_RE.match(label):
                raise ConfigError(f"invalid label name {label!r} on {self.name}")
        if len(set(self.labels)) != len(self.labels):
            raise ConfigError(f"duplicate label names on {self.name}")
        if self.kind == "histogram":
            if not self.buckets:
                raise ConfigError(f"histogram {self.name} needs bucket edges")
            if any(b >= a for b, a in zip(self.buckets, self.buckets[1:])):
                raise ConfigError(
                    f"histogram {self.name} bucket edges must be strictly increasing"
                )
        elif self.buckets:
            raise ConfigError(f"{self.kind} {self.name} must not declare buckets")


@dataclass
class _HistogramState:
    """Per-series histogram accumulator (len(buckets)+1 counts)."""

    counts: list[int]
    sum: float = 0
    count: int = 0


class MetricsRegistry:
    """A set of declared metrics plus their per-label-set series.

    All mutation goes through :meth:`inc`, :meth:`set`, :meth:`observe`,
    and :meth:`advance_to`; reads through :meth:`value`, :meth:`total`,
    and :meth:`snapshot`.  Using an undeclared metric name, the wrong
    kind, or the wrong label set raises
    :class:`~repro.errors.ConfigError` — metrics are a typed surface,
    not a free-form dict.
    """

    def __init__(self, specs: Iterable[MetricSpec] = ()) -> None:
        self._specs: dict[str, MetricSpec] = {}
        # Counter/gauge series and histogram series live in separate
        # maps so values stay precisely typed (counters must remain int).
        self._scalars: dict[str, dict[_LabelKey, int | float]] = {}
        self._histograms: dict[str, dict[_LabelKey, _HistogramState]] = {}
        for spec in specs:
            self.register(spec)

    # -- declaration ----------------------------------------------------
    def register(self, spec: MetricSpec) -> None:
        if spec.name in self._specs:
            raise ConfigError(f"metric {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        if spec.kind == "histogram":
            self._histograms[spec.name] = {}
        else:
            self._scalars[spec.name] = {}

    def spec(self, name: str) -> MetricSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(f"unregistered metric {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def _key(self, spec: MetricSpec, labels: dict[str, str]) -> _LabelKey:
        declared = spec.labels
        if not labels and not declared:
            return ()  # fast path: unlabelled series dominate the hot loop
        n = len(labels)
        if n == len(declared):
            # Equal-length dicts with every declared label present carry
            # exactly the declared label set — no set comparison needed.
            # One- and two-label metrics cover the hot writers, so they
            # skip the generator machinery.
            try:
                if n == 1:
                    return (str(labels[declared[0]]),)
                if n == 2:
                    return (str(labels[declared[0]]), str(labels[declared[1]]))
                return tuple(str(labels[label]) for label in declared)
            except KeyError:
                pass
        raise ConfigError(
            f"{spec.name} takes labels {list(spec.labels)}, got {sorted(labels)}"
        )

    def _expect(self, name: str, kind: str) -> MetricSpec:
        spec = self.spec(name)
        if spec.kind != kind:
            raise ConfigError(f"{name} is a {spec.kind}, not a {kind}")
        return spec

    # -- writes ---------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels: str) -> None:
        """Add ``amount`` (>= 0) to a counter series."""
        spec = self._expect(name, "counter")
        if amount < 0:
            raise ConfigError(f"counter {name} cannot decrease (inc {amount})")
        key = self._key(spec, labels)
        series = self._scalars[name]
        series[key] = series.get(key, 0) + amount

    def advance_to(self, name: str, total: int, **labels: str) -> None:
        """Raise a counter series to an absolute (monotonic) total.

        The bridge between legacy absolute-assignment call sites
        (``stats.packets_dropped = counters.dropped``) and the
        increment-only counter model: the series jumps to ``total``, and
        a shrinking total is rejected loudly.
        """
        spec = self._expect(name, "counter")
        key = self._key(spec, labels)
        series = self._scalars[name]
        current = series.get(key, 0)
        if total < current:
            raise ConfigError(
                f"counter {name} cannot decrease ({current} -> {total})"
            )
        series[key] = total

    def set(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge series to ``value``."""
        spec = self._expect(name, "gauge")
        self._scalars[name][self._key(spec, labels)] = value

    def observe(self, name: str, value: float, count: int = 1, **labels: str) -> None:
        """Record ``count`` observations of ``value`` into a histogram."""
        spec = self._expect(name, "histogram")
        if count < 0:
            raise ConfigError(f"histogram {name} observation count must be >= 0")
        if count == 0:
            return
        key = self._key(spec, labels)
        series = self._histograms[name]
        state = series.get(key)
        if state is None:
            state = _HistogramState(counts=[0] * (len(spec.buckets) + 1))
            series[key] = state
        index = len(spec.buckets)  # +Inf overflow by default
        for i, edge in enumerate(spec.buckets):
            if value <= edge:
                index = i
                break
        state.counts[index] += count
        state.sum += value * count
        state.count += count

    # -- reads ----------------------------------------------------------
    def value(self, name: str, **labels: str) -> int | float:
        """One counter/gauge series' value (0 if never written)."""
        spec = self.spec(name)
        if spec.kind == "histogram":
            raise ConfigError(f"{name} is a histogram; read it via snapshot()")
        return self._scalars[name].get(self._key(spec, labels), 0)

    def total(self, name: str) -> int | float:
        """Sum across every series (histograms: total observation count)."""
        spec = self.spec(name)
        if spec.kind == "histogram":
            return sum(state.count for state in self._histograms[name].values())
        return sum(self._scalars[name].values())

    def series_count(self, name: str) -> int:
        spec = self.spec(name)
        if spec.kind == "histogram":
            return len(self._histograms[name])
        return len(self._scalars[name])

    # -- snapshot -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Every declared metric as a sorted, JSON-able dict.

        Metrics that were never written appear with an empty series
        list — the coverage check reads exactly that distinction.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._specs):
            spec = self._specs[name]
            entry: dict[str, Any] = {
                "kind": spec.kind,
                "labels": list(spec.labels),
            }
            rows: list[dict[str, Any]] = []
            if spec.kind == "histogram":
                entry["buckets"] = list(spec.buckets)
                for key in sorted(self._histograms[name]):
                    state = self._histograms[name][key]
                    rows.append(
                        {
                            "labels": dict(zip(spec.labels, key)),
                            "buckets": list(state.counts),
                            "sum": state.sum,
                            "count": state.count,
                        }
                    )
            else:
                for key in sorted(self._scalars[name]):
                    rows.append(
                        {
                            "labels": dict(zip(spec.labels, key)),
                            "value": self._scalars[name][key],
                        }
                    )
            entry["series"] = rows
            out[name] = entry
        return out


def exercised_metrics(snapshot: dict[str, Any]) -> set[str]:
    """Metric names with at least one recorded series in ``snapshot``."""
    return {name for name, entry in snapshot.items() if entry.get("series")}
