"""The single catalog of every metric the co-simulation records.

Lint rule OBS001 enforces that :class:`~repro.obs.metrics.MetricSpec`
is only constructed here and that every ``rose_*`` metric name used at
a call site appears in this catalog — no stringly-typed ad-hoc metrics.

Bucket edges are fixed here (not derived from data) so histogram output
is bit-stable across runs and mergeable across sweep shards.
"""

from __future__ import annotations

from repro.obs.metrics import MetricSpec, MetricsRegistry

#: Per-layer compute cost in SoC cycles: decade edges spanning a trivial
#: ReLU (~1e2 cycles) up to a large conv on the CPU path (~1e8).
LAYER_CYCLE_BUCKETS: tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

#: End-to-end inference latency in SoC cycles (request to response).
LATENCY_CYCLE_BUCKETS: tuple[float, ...] = (
    1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8,
)

#: Metrics declared but not reachable from any committed mission
#: configuration; the coverage check skips them.  ``held_commands``
#: mirrors an AppStats column whose guarding branch (command held with
#: no frame ever seen) cannot fire under the shipped control flow —
#: kept because the thin-view migration must cover every legacy column.
#: The ``rose_sweep_*`` / ``rose_cache_*`` series live in the *sweep*
#: registry (not in mission snapshots) and record sweep-engine
#: resilience activity (retries, crashes, journal replays): they only
#: move under injected faults or cache corruption, which single demo
#: missions never produce — the chaos tests and the CI chaos job
#: exercise them instead.
#: The ``rose_serve_*`` series live in the *serve* registry and record
#: sweep-service control-plane activity (job submissions, shard leases,
#: work steals, API requests): only a running service moves them, which
#: single demo missions never do — the serve test harness and the CI
#: serve job exercise them instead.
COVERAGE_EXEMPT: frozenset[str] = frozenset(
    {
        "rose_app_held_commands_total",
        "rose_sweep_retries_total",
        "rose_sweep_timeouts_total",
        "rose_sweep_crashes_total",
        "rose_sweep_quarantined_total",
        "rose_sweep_journal_replays_total",
        "rose_cache_corrupt_total",
        "rose_sweep_batched_missions_total",
        "rose_sweep_batch_chunks_total",
        "rose_serve_jobs_submitted_total",
        "rose_serve_jobs_finished_total",
        "rose_serve_leases_granted_total",
        "rose_serve_leases_expired_total",
        "rose_serve_tasks_completed_total",
        "rose_serve_tasks_stolen_total",
        "rose_serve_requests_total",
    }
)

MISSION_METRICS: tuple[MetricSpec, ...] = (
    # -- synchronizer ---------------------------------------------------
    MetricSpec(
        "rose_sync_steps_total",
        "counter",
        "Completed lockstep synchronization steps (Algorithm 1 iterations).",
    ),
    MetricSpec(
        "rose_sync_grants_total",
        "counter",
        "SYNC_GRANT packets sent to the RTL side, including regrant resends.",
    ),
    MetricSpec(
        "rose_sync_done_total",
        "counter",
        "SYNC_DONE acknowledgements received, split by freshness.",
        labels=("result",),
    ),
    MetricSpec(
        "rose_sync_regrants_total",
        "counter",
        "Watchdog-triggered grant retransmissions.",
    ),
    MetricSpec(
        "rose_sync_watchdog_fires_total",
        "counter",
        "Watchdog expirations that aborted the mission (regrants exhausted "
        "or SYNC_DONE never arrived).",
    ),
    MetricSpec(
        "rose_sync_sensor_faults_total",
        "counter",
        "Sensor-side fault activations observed by the synchronizer "
        "(camera blackout, stuck IMU).",
    ),
    # -- link / transports ---------------------------------------------
    MetricSpec(
        "rose_link_packets_total",
        "counter",
        "Packets crossing the synchronizer boundary by direction and type.",
        labels=("direction", "ptype"),
    ),
    MetricSpec(
        "rose_link_bytes_total",
        "counter",
        "Framed bytes through each transport endpoint by direction.",
        labels=("endpoint", "direction"),
    ),
    MetricSpec(
        "rose_link_crc_discards_total",
        "counter",
        "Frames dropped by CRC verification across both transports.",
    ),
    MetricSpec(
        "rose_link_faults_total",
        "counter",
        "Wire-level fault effects applied to the link, by kind "
        "(drop/corrupt/duplicate/delay).",
        labels=("kind",),
    ),
    # -- fault injector -------------------------------------------------
    MetricSpec(
        "rose_faults_injected_total",
        "counter",
        "Fault-injector decisions by kind and packet type, counted at the "
        "moment of injection.",
        labels=("kind", "ptype"),
    ),
    # -- bridge / SoC ---------------------------------------------------
    MetricSpec(
        "rose_bridge_packets_total",
        "counter",
        "RoseBridge queue traffic by queue (rx/tx) and event "
        "(enqueued/dequeued/rejected).",
        labels=("queue", "event"),
    ),
    MetricSpec(
        "rose_bridge_steps_granted_total",
        "counter",
        "Cycle-budget grants accepted by the bridge.",
    ),
    MetricSpec(
        "rose_soc_dma_bytes_total",
        "counter",
        "Payload bytes DMA'd across the bridge by direction (rx/tx).",
        labels=("direction",),
    ),
    MetricSpec(
        "rose_soc_cycles_total",
        "counter",
        "Simulated SoC cycles elapsed over the mission.",
    ),
    MetricSpec(
        "rose_soc_cpu_busy_cycles_total",
        "counter",
        "Cycles the SoC CPU spent busy (non-idle).",
    ),
    MetricSpec(
        "rose_soc_idle_cycles_total",
        "counter",
        "Cycles the SoC spent idle waiting for work.",
    ),
    MetricSpec(
        "rose_soc_gemmini_busy_cycles_total",
        "counter",
        "Cycles the Gemmini accelerator spent busy.",
    ),
    MetricSpec(
        "rose_soc_gemmini_ops_total",
        "counter",
        "Operations dispatched to the Gemmini accelerator.",
    ),
    MetricSpec(
        "rose_soc_mmio_total",
        "counter",
        "MMIO accesses to the bridge register file by operation.",
        labels=("op",),
    ),
    MetricSpec(
        "rose_soc_inferences_total",
        "counter",
        "DNN inferences completed on the SoC.",
    ),
    # -- DNN runtime ----------------------------------------------------
    MetricSpec(
        "rose_dnn_layer_cycles",
        "histogram",
        "Per-layer compute cost in SoC cycles, labelled by model and "
        "backend (cpu/gemmini).",
        labels=("model", "backend"),
        buckets=LAYER_CYCLE_BUCKETS,
    ),
    # -- application layer ---------------------------------------------
    MetricSpec(
        "rose_app_inferences_total",
        "counter",
        "Application-level inference requests completed, by model.",
        labels=("model",),
    ),
    MetricSpec(
        "rose_app_inference_latency_cycles",
        "histogram",
        "End-to-end inference latency in SoC cycles (request cycle to "
        "response cycle), by model.",
        labels=("model",),
        buckets=LATENCY_CYCLE_BUCKETS,
    ),
    MetricSpec(
        "rose_app_sensor_timeouts_total",
        "counter",
        "Sensor requests the trail app abandoned after the timeout budget.",
    ),
    MetricSpec(
        "rose_app_sensor_retries_total",
        "counter",
        "Sensor request retries issued by the trail app.",
    ),
    MetricSpec(
        "rose_app_stale_frames_total",
        "counter",
        "Control decisions recomputed from a stale (held) camera frame.",
    ),
    MetricSpec(
        "rose_app_held_commands_total",
        "counter",
        "Actuation commands re-issued with no frame ever received.",
    ),
    MetricSpec(
        "rose_fusion_sensor_timeouts_total",
        "counter",
        "Fusion-pipeline sensor timeouts by sensor branch.",
        labels=("sensor",),
    ),
    MetricSpec(
        "rose_fusion_sensor_retries_total",
        "counter",
        "Fusion-pipeline sensor request retries.",
    ),
    MetricSpec(
        "rose_app_deadline_checks_total",
        "counter",
        "Deadline-policy evaluations in the dynamic runtime, split by "
        "whether the situation was at risk (Eq. 3 TTC below threshold).",
        labels=("at_risk",),
    ),
    MetricSpec(
        "rose_app_deadline_misses_total",
        "counter",
        "Inferences whose selected model could not meet the process "
        "deadline (Eq. 5).",
    ),
    # -- mission summary ------------------------------------------------
    MetricSpec(
        "rose_mission_sim_time_seconds",
        "gauge",
        "Simulated time covered by the mission.",
    ),
    MetricSpec(
        "rose_mission_progress",
        "gauge",
        "Fraction of the course completed (0..1).",
    ),
    MetricSpec(
        "rose_mission_completed",
        "gauge",
        "1 if the mission finished the course without failure, else 0.",
    ),
    MetricSpec(
        "rose_mission_collisions_total",
        "counter",
        "Collisions recorded by the environment during the mission.",
    ),
)


#: Sweep-engine resilience metrics.  Recorded by the *sweep supervisor*
#: (parent process), never by a mission: they live in their own registry
#: so per-mission flight-recorder snapshots — and everything hashed from
#: them (golden corpus telemetry, mission signatures' obs payloads) —
#: are byte-identical whether or not the mission ran under a sweep.
SWEEP_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "rose_sweep_retries_total",
        "counter",
        "Failed task attempts re-dispatched under the sweep RetryPolicy.",
    ),
    MetricSpec(
        "rose_sweep_timeouts_total",
        "counter",
        "Task attempts killed for exceeding the per-task timeout.",
    ),
    MetricSpec(
        "rose_sweep_crashes_total",
        "counter",
        "Worker-pool breaks (BrokenProcessPool) survived by respawning.",
    ),
    MetricSpec(
        "rose_sweep_quarantined_total",
        "counter",
        "Poison tasks quarantined after exhausting their retry budget.",
    ),
    MetricSpec(
        "rose_sweep_journal_replays_total",
        "counter",
        "Tasks skipped on --resume because the sweep journal already "
        "recorded their completion.",
    ),
    MetricSpec(
        "rose_cache_corrupt_total",
        "counter",
        "Corrupt result-cache entries quarantined to <key>.pkl.corrupt.",
    ),
    MetricSpec(
        "rose_sweep_batched_missions_total",
        "counter",
        "Cache-missed missions executed on the batched lockstep engine "
        "instead of one-process-per-mission.",
    ),
    MetricSpec(
        "rose_sweep_batch_chunks_total",
        "counter",
        "Lockstep engine invocations (groups of compatible missions "
        "advanced together) during sweep execution.",
    ),
)

#: Sweep-service control-plane metrics.  Recorded by the *serve* layer
#: (scheduler, API front-end) in its own registry: they describe the
#: service's operational behaviour — queueing, leasing, stealing — and
#: must never leak into mission snapshots or sweep reports, whose
#: deterministic views are compared bit-for-bit against serial runs.
SERVE_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "rose_serve_jobs_submitted_total",
        "counter",
        "Sweep submissions accepted by the service, split by outcome "
        "(submitted = new job, deduplicated = content-addressed hit on an "
        "existing job, requeued = terminal failed/cancelled job reopened).",
        labels=("result",),
    ),
    MetricSpec(
        "rose_serve_jobs_finished_total",
        "counter",
        "Jobs reaching a terminal state, by state (done/failed/cancelled).",
        labels=("state",),
    ),
    MetricSpec(
        "rose_serve_leases_granted_total",
        "counter",
        "Task-slice leases handed to shard workers.",
    ),
    MetricSpec(
        "rose_serve_leases_expired_total",
        "counter",
        "Leases revoked because the owning shard missed its heartbeat "
        "deadline (the dead-shard detection edge of the steal protocol).",
    ),
    MetricSpec(
        "rose_serve_tasks_completed_total",
        "counter",
        "Task completions recorded by the scheduler, by terminal state.",
        labels=("state",),
    ),
    MetricSpec(
        "rose_serve_tasks_stolen_total",
        "counter",
        "Tasks re-leased to a different shard after their original "
        "owner's lease expired (work-stealing).",
    ),
    MetricSpec(
        "rose_serve_requests_total",
        "counter",
        "Serve API requests, by route and response status.",
        labels=("route", "status"),
    ),
)

#: The full declared catalog (lint rule OBS001's source of truth).
DECLARED_METRICS: tuple[MetricSpec, ...] = (
    MISSION_METRICS + SWEEP_METRICS + SERVE_METRICS
)


def mission_registry() -> MetricsRegistry:
    """A fresh registry pre-loaded with the mission metric catalog."""
    return MetricsRegistry(MISSION_METRICS)


def sweep_registry() -> MetricsRegistry:
    """A fresh registry for sweep-supervisor resilience metrics."""
    return MetricsRegistry(SWEEP_METRICS)


def serve_registry() -> MetricsRegistry:
    """A fresh registry for sweep-service control-plane metrics."""
    return MetricsRegistry(SERVE_METRICS)


def spec_for(name: str) -> MetricSpec | None:
    """Look up a declared spec by name (None if not declared)."""
    for spec in DECLARED_METRICS:
        if spec.name == name:
            return spec
    return None
