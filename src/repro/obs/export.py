"""Exporters: Prometheus text exposition format (and a parser for it).

``to_prometheus`` renders a metrics snapshot in the Prometheus text
format (``# HELP`` / ``# TYPE`` lines, cumulative ``_bucket{le=...}``
series for histograms).  ``parse_prometheus`` reads that format back
into snapshot shape — it exists so the property suite can prove the
exporter round-trips losslessly, and doubles as a scrape-file reader
for ad-hoc tooling.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import ConfigError
from repro.obs.declarations import spec_for


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; refuse the ambiguity
        raise ConfigError("boolean metric values are not supported")
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _label_str(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a snapshot in Prometheus text exposition format.

    Only exercised series are emitted (Prometheus has no notion of a
    declared-but-empty metric), but ``# TYPE`` lines appear for every
    metric with at least one series.  Histogram buckets are cumulative
    with a closing ``le="+Inf"`` bucket, per the exposition format.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if not entry["series"]:
            continue
        spec = spec_for(name)
        if spec is not None and spec.help:
            lines.append(f"# HELP {name} {_escape(spec.help)}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] == "histogram":
            edges = entry["buckets"]
            for row in entry["series"]:
                cumulative = 0
                for edge, count in zip(edges, row["buckets"]):
                    cumulative += count
                    label_s = _label_str(row["labels"], (("le", _format_value(edge)),))
                    lines.append(f"{name}_bucket{label_s} {cumulative}")
                cumulative += row["buckets"][len(edges)]
                label_s = _label_str(row["labels"], (("le", "+Inf"),))
                lines.append(f"{name}_bucket{label_s} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_str(row['labels'])} "
                    f"{_format_value(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(row['labels'])} {row['count']}"
                )
        else:
            for row in entry["series"]:
                lines.append(
                    f"{name}{_label_str(row['labels'])} "
                    f"{_format_value(row['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_number(text: str) -> int | float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip()
        if text[eq + 1] != '"':
            raise ConfigError(f"malformed label value near {text[eq:]!r}")
        j = eq + 2
        raw: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j : j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def _split_sample(line: str) -> tuple[str, dict[str, str], int | float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        body, tail = rest.rsplit("}", 1)
        return name.strip(), _parse_labels(body), _parse_number(tail.strip())
    name, value = line.rsplit(None, 1)
    return name.strip(), {}, _parse_number(value)


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse Prometheus text exposition back into snapshot shape.

    Inverse of :func:`to_prometheus` for exercised series: cumulative
    histogram buckets are de-accumulated back to per-bucket counts and
    bucket edges recovered from the ``le`` labels.
    """
    kinds: dict[str, str] = {}
    scalar_rows: dict[str, list[dict[str, Any]]] = {}
    hist_edges: dict[str, list[float]] = {}
    hist_rows: dict[str, dict[tuple[str, ...], dict[str, Any]]] = {}

    def hist_row(name: str, labels: dict[str, str]) -> dict[str, Any]:
        key = tuple(f"{k}={v}" for k, v in sorted(labels.items()))
        rows = hist_rows.setdefault(name, {})
        if key not in rows:
            rows[key] = {"labels": dict(labels), "cumulative": {}, "sum": 0, "count": 0}
        return rows[key]

    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(None, 3)
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue
        sample, labels, value = _split_sample(line)
        base = sample
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if candidate is not None and kinds.get(candidate) == "histogram":
                base = candidate
                if suffix == "_bucket":
                    edge = _parse_number(labels.pop("le"))
                    row = hist_row(base, labels)
                    row["cumulative"][float(edge)] = value
                    if not math.isinf(edge):
                        edges = hist_edges.setdefault(base, [])
                        if float(edge) not in edges:
                            edges.append(float(edge))
                elif suffix == "_sum":
                    hist_row(base, labels)["sum"] = value
                else:
                    hist_row(base, labels)["count"] = value
                break
        else:
            if kinds.get(sample) in ("counter", "gauge"):
                scalar_rows.setdefault(sample, []).append(
                    {"labels": labels, "value": value}
                )
            else:
                raise ConfigError(f"sample {sample!r} has no preceding # TYPE line")

    snapshot: dict[str, Any] = {}
    for name, kind in kinds.items():
        if kind == "histogram":
            edges = sorted(hist_edges.get(name, []))
            series: list[dict[str, Any]] = []
            for row in hist_rows.get(name, {}).values():
                cumulative = row["cumulative"]
                counts: list[int | float] = []
                prev: int | float = 0
                for edge in edges:
                    cum = cumulative.get(edge, prev)
                    counts.append(cum - prev)
                    prev = cum
                counts.append(cumulative.get(math.inf, prev) - prev)
                series.append(
                    {
                        "labels": row["labels"],
                        "buckets": counts,
                        "sum": row["sum"],
                        "count": row["count"],
                    }
                )
            label_names = sorted(series[0]["labels"]) if series else []
            series.sort(key=lambda r: tuple(str(r["labels"][k]) for k in label_names))
            snapshot[name] = {
                "kind": kind,
                "labels": label_names,
                "buckets": edges,
                "series": series,
            }
        else:
            rows = scalar_rows.get(name, [])
            label_names = sorted(rows[0]["labels"]) if rows else []
            rows.sort(key=lambda r: tuple(str(r["labels"][k]) for k in label_names))
            snapshot[name] = {"kind": kind, "labels": label_names, "series": rows}
    return dict(sorted(snapshot.items()))
