"""Short demonstration missions that exercise the full metric catalog.

``python -m repro obs --demo`` (and the CI obs job) runs this set and
then checks, via :func:`repro.obs.metrics.exercised_metrics`, that every
declared metric outside ``COVERAGE_EXEMPT`` recorded at least one
series — a declared-but-dead metric is a lint-grade bug: either the
instrumentation was dropped or the declaration is stale.

Each mission is deliberately tiny (a few simulated seconds) but tuned
to light up one corner of the catalog: healthy lockstep, deadline-miss
accounting, fusion sensor branches, link faults with app-level
degradation, watchdog abort, and stale SYNC_DONE classification.
"""

from __future__ import annotations

from repro.core.config import CoSimConfig
from repro.core.faults import FaultPlan, FaultRule, ScheduledFault


def demo_missions() -> dict[str, CoSimConfig]:
    """Named short missions covering every reachable declared metric."""
    return {
        # Healthy lockstep: sync/link/bridge/SoC/DNN/app/mission metrics.
        "obs-healthy": CoSimConfig(
            world="tunnel",
            soc="A",
            model="resnet14",
            target_velocity=3.0,
            max_sim_time=2.0,
        ),
        # Dynamic runtime driven fast toward the wall: deadline checks
        # flip to at_risk and the low-latency model still misses Eq. 5.
        "obs-deadline": CoSimConfig(
            world="tunnel",
            soc="A",
            controller="dnn",
            dynamic_runtime=True,
            target_velocity=14.0,
            initial_angle_deg=50.0,
            max_sim_time=2.0,
        ),
        # Fusion pipeline with flaky IMU/camera responses plus a stuck-IMU
        # window: fusion timeout/retry counters and sensor faults.
        "obs-fusion-faults": CoSimConfig(
            world="tunnel",
            soc="A",
            controller="fusion",
            target_velocity=3.0,
            max_sim_time=3.0,
            faults=FaultPlan(
                seed=11,
                rules=(
                    FaultRule(ptype="IMU_RESP", drop=0.3),
                    FaultRule(ptype="CAMERA_RESP", drop=0.3),
                ),
                scheduled=(
                    ScheduledFault(kind="stuck_imu", start_step=2, end_step=40),
                ),
            ),
        ),
        # Trail app over a lossy link: corrupt/duplicate/delay rules, a
        # camera-response blackout window late enough that a first frame
        # has arrived (stale-frame reuse), and a camera blackout for
        # synchronizer-side sensor faults.
        "obs-lossy-link": CoSimConfig(
            world="tunnel",
            soc="A",
            target_velocity=3.0,
            max_sim_time=5.0,
            faults=FaultPlan(
                seed=7,
                rules=(
                    FaultRule(
                        ptype="CAMERA_RESP",
                        corrupt=0.2,
                        duplicate=0.2,
                        delay=0.2,
                        delay_steps=1,
                    ),
                ),
                scheduled=(
                    # Wide enough that the app's timeout budget (3 syncs
                    # x 3 retries) exhausts mid-window, forcing stale-frame
                    # reuse rather than a late success.
                    ScheduledFault(
                        kind="drop", ptype="CAMERA_RESP", start_step=6, end_step=60
                    ),
                    ScheduledFault(
                        kind="camera_blackout", start_step=70, end_step=90
                    ),
                ),
            ),
        ),
        # Every SYNC_GRANT dropped: regrants exhaust and the watchdog
        # ends the mission (failure_reason="watchdog").
        "obs-watchdog": CoSimConfig(
            world="tunnel",
            soc="A",
            target_velocity=3.0,
            max_sim_time=1.0,
            faults=FaultPlan(
                seed=3,
                rules=(FaultRule(ptype="SYNC_GRANT", drop=1.0),),
            ),
        ),
        # Delayed + duplicated SYNC_DONE acks: the synchronizer regrants,
        # then classifies the late/extra acks as stale.
        "obs-stale-ack": CoSimConfig(
            world="tunnel",
            soc="A",
            target_velocity=3.0,
            max_sim_time=2.0,
            faults=FaultPlan(
                seed=5,
                rules=(
                    FaultRule(
                        ptype="SYNC_DONE", delay=0.5, duplicate=0.5, delay_steps=1
                    ),
                ),
            ),
        ),
    }
