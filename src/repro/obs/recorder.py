"""Flight recorder: one ``rose-obs/1`` artifact per mission.

A :class:`FlightRecord` merges three views of a mission into a single
JSON document:

* the deterministic metrics snapshot (bit-identical across reruns),
* the wall-clock :class:`~repro.core.timing.StageTimer` breakdown
  (host-dependent, excluded from the deterministic view),
* a summary of the :class:`~repro.core.trace.Tracer` event stream.

The artifact is attached to ``MissionResult.obs`` and — being a plain
picklable dataclass — rides through the sweep result cache for free, so
cache hits reconstitute their telemetry without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: Artifact format tag; bump on breaking schema changes.
OBS_FORMAT = "rose-obs/1"


@dataclass
class FlightRecord:
    """The per-mission observability artifact."""

    label: str
    config_key: str
    metrics: dict[str, Any]
    #: Wall-clock stage breakdown (env_step/soc_step/sync_overhead/
    #: inference) — informational only, never compared.
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Trace summary: {"events": N, "by_category": {...}} or None when
    #: no tracer was attached.
    trace: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "format": OBS_FORMAT,
            "label": self.label,
            "config_key": self.config_key,
            "metrics": self.metrics,
            "stage_timings": self.stage_timings,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def deterministic_view(self) -> dict[str, Any]:
        """The artifact minus host-dependent fields (wall-clock timings,
        trace durations) — the part that must be bit-identical across
        reruns of the same config."""
        return {
            "format": OBS_FORMAT,
            "label": self.label,
            "config_key": self.config_key,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FlightRecord":
        fmt = data.get("format")
        if fmt != OBS_FORMAT:
            raise ConfigError(
                f"unsupported obs artifact format {fmt!r} (expected {OBS_FORMAT})"
            )
        return cls(
            label=str(data["label"]),
            config_key=str(data["config_key"]),
            metrics=dict(data["metrics"]),
            stage_timings=dict(data.get("stage_timings", {})),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FlightRecord":
        return cls.from_dict(json.loads(text))


def trace_summary(events: list[Any]) -> dict[str, Any]:
    """Summarise Tracer events deterministically (counts only, no
    durations — span durations are wall clock)."""
    by_category: dict[str, int] = {}
    for event in events:
        category = str(getattr(event, "category", "unknown"))
        by_category[category] = by_category.get(category, 0) + 1
    return {
        "events": len(events),
        "by_category": dict(sorted(by_category.items())),
    }
