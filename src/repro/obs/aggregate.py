"""Sweep-level telemetry aggregation: merge mission snapshots.

``merge_snapshots`` folds any number of per-mission metric snapshots
(as produced by :meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
into one combined snapshot with the same shape.  The fold is
associative and commutative — counters, histograms, *and* gauges all
sum per label set, and series stay sorted — so splitting a sweep across
workers, merging shards in any grouping, and merging the serial run all
yield the identical aggregate (this is the property the hypothesis
suite pins down).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigError
from repro.obs.metrics import exercised_metrics

__all__ = ["merge_snapshots", "exercised_metrics"]


def _labels_key(labels: dict[str, str], order: list[str]) -> tuple[str, ...]:
    return tuple(str(labels[name]) for name in order)


def _merge_entry(name: str, base: dict[str, Any], other: dict[str, Any]) -> None:
    """Fold ``other``'s series into ``base`` (same metric) in place."""
    for attr in ("kind", "labels", "buckets"):
        if base.get(attr) != other.get(attr):
            raise ConfigError(
                f"cannot merge metric {name}: {attr} mismatch "
                f"({base.get(attr)!r} vs {other.get(attr)!r})"
            )
    order = list(base["labels"])
    kind = base["kind"]
    by_key: dict[tuple[str, ...], dict[str, Any]] = {
        _labels_key(row["labels"], order): row for row in base["series"]
    }
    for row in other["series"]:
        key = _labels_key(row["labels"], order)
        mine = by_key.get(key)
        if mine is None:
            if kind == "histogram":
                by_key[key] = {
                    "labels": dict(row["labels"]),
                    "buckets": list(row["buckets"]),
                    "sum": row["sum"],
                    "count": row["count"],
                }
            else:
                by_key[key] = {"labels": dict(row["labels"]), "value": row["value"]}
            continue
        if kind == "histogram":
            if len(mine["buckets"]) != len(row["buckets"]):
                raise ConfigError(f"cannot merge metric {name}: bucket count mismatch")
            mine["buckets"] = [a + b for a, b in zip(mine["buckets"], row["buckets"])]
            mine["sum"] += row["sum"]
            mine["count"] += row["count"]
        else:
            mine["value"] += row["value"]
    base["series"] = [by_key[key] for key in sorted(by_key)]


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge metric snapshots into one aggregate snapshot.

    Accepts zero or more snapshots; metrics absent from one shard but
    present in another are kept (a shard only missing *series* is the
    normal case — declared-but-unexercised metrics carry empty series).
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        # sorted(): merge order (and the report_signature digest downstream)
        # must not depend on how a shard happened to construct its snapshot.
        for name, entry in sorted(snapshot.items()):
            mine = merged.get(name)
            if mine is None:
                copied: dict[str, Any] = {
                    "kind": entry["kind"],
                    "labels": list(entry["labels"]),
                }
                if entry["kind"] == "histogram":
                    copied["buckets"] = list(entry["buckets"])
                copied["series"] = []
                merged[name] = copied
                _merge_entry(name, copied, entry)
            else:
                _merge_entry(name, mine, entry)
    return dict(sorted(merged.items()))
