"""Background DNN workload (multi-tenant accelerator contention).

The paper's introduction motivates end-to-end evaluation with exactly this
scenario: "the performance of each individual accelerator can be heavily
impacted by system-level resource contentions where multiple
general-purpose cores and accelerators are running together" (citing
multi-tenant DNN execution).  This task models a secondary perception
network — e.g. an object-detection monitor — running periodic inferences
on the same SoC as the flight controller.  Its inferences serialize with
the controller's on the shared core/accelerator, inflating the
controller's image-to-command latency by queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class MonitorConfig:
    """Rate of the background inference workload."""

    rate_hz: float = 10.0  # inferences per second

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ConfigError("rate_hz must be positive")


@dataclass
class MonitorStats:
    inferences: int = 0
    total_cycles: int = 0

    @property
    def mean_latency_cycles(self) -> float:
        return self.total_cycles / self.inferences if self.inferences else 0.0


def dnn_monitor_app(
    rt,
    session,
    cpu,
    config: MonitorConfig | None = None,
    stats: MonitorStats | None = None,
):
    """Target program: periodic background inference.

    Runs one inference per period on the shared compute resources; no
    I/O, no actuation — pure contention load.
    """
    config = config or MonitorConfig()
    stats = stats if stats is not None else MonitorStats()
    period_cycles = int(cpu.frequency_hz / config.rate_hz)
    while True:
        start = yield from rt.current_cycle()
        report = yield from rt.run_inference(session)
        stats.inferences += 1
        stats.total_cycles += report.total_cycles
        now = yield from rt.current_cycle()
        elapsed = now - start
        if elapsed < period_cycles:
            yield from rt.delay(period_cycles - elapsed)
