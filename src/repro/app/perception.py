"""Perception stage: camera packet -> dual-head trail inference.

Two interchangeable implementations stand behind :class:`Perception`:

* :class:`BehavioralPerception` — the calibrated classifier of
  :mod:`repro.dnn.calibrated`, consuming the ground-truth course metadata
  carried in the camera packet.  Used by the closed-loop experiments so
  each ResNet variant shows its Table 3 accuracy/confidence.
* :class:`CnnPerception` — a real trained :class:`TrailNetModel` running
  on the packet's pixels.  Used by the train-and-fly example to
  demonstrate the full pipeline end to end.

Either way the *timing* of the inference is charged separately, by the
scheduled operator graph on the SoC cycle models; perception here supplies
only the classification outputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.packets import DataPacket, PacketType
from repro.dnn.calibrated import CalibratedTrailClassifier, ClassifierProfile, TrailInference
from repro.errors import ConfigError


class Perception:
    """Interface: produce a :class:`TrailInference` from a camera packet."""

    def infer_packet(self, packet: DataPacket) -> TrailInference:  # pragma: no cover
        raise NotImplementedError


def _check_camera_packet(packet: DataPacket) -> None:
    if packet.ptype != PacketType.CAMERA_RESP:
        raise ConfigError(
            f"perception expects a CAMERA_RESP packet, got {packet.ptype.name}"
        )


class BehavioralPerception(Perception):
    """Calibrated classifier over the packet's course metadata."""

    def __init__(self, profile: ClassifierProfile, seed: int = 0):
        self.profile = profile
        self._classifier = CalibratedTrailClassifier(profile, seed=seed)

    def infer_packet(self, packet: DataPacket) -> TrailInference:
        _check_camera_packet(packet)
        _h, _w, timestamp, heading_error, lateral_offset, half_width = packet.values
        return self._classifier.infer(
            heading_error, lateral_offset, half_width, timestamp=timestamp
        )


class CnnPerception(Perception):
    """A trained :class:`~repro.dnn.resnet.TrailNetModel` over the pixels."""

    def __init__(self, model):
        self.model = model
        self.model.eval()

    def infer_packet(self, packet: DataPacket) -> TrailInference:
        _check_camera_packet(packet)
        height, width = int(packet.values[0]), int(packet.values[1])
        pixels = (
            np.frombuffer(packet.raw, dtype=np.uint8)
            .reshape(1, 1, height, width)
            .astype(np.float32)
            / 255.0
        )
        angular_probs, lateral_probs = self.model.predict_probs(pixels)
        return TrailInference(
            angular_probs=angular_probs[0],
            lateral_probs=lateral_probs[0],
            angular_pred=int(angular_probs[0].argmax()),
            lateral_pred=int(lateral_probs[0].argmax()),
        )
