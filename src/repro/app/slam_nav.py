"""SLAM-based navigation application (a Section 6 extension).

The companion computer runs the full classical pipeline onboard: integrate
noisy odometry, correct it by lidar scan-matching against the map built so
far, extend the map, and steer from the *estimated* pose using the onboard
course map.  Ground truth never reaches the controller — only the sensors
the deployed system would have — so localization error feeds straight into
flight quality, and the scan-matcher's data-dependent iteration count
feeds straight into compute latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.packets import PacketType, lidar_request, state_request, target_command
from repro.env.worlds import World
from repro.errors import ConfigError
from repro.slam.pipeline import SlamPipeline


@dataclass
class SlamNavConfig:
    """Rates, gains and odometry noise of the SLAM navigator."""

    scan_rate_hz: float = 10.0
    lateral_gain: float = 1.2  # m/s per meter of estimated offset
    heading_gain: float = 1.5  # rad/s per rad of estimated heading error
    altitude: float = 1.5
    odometry_noise_fraction: float = 0.06  # per meter travelled
    odometry_yaw_noise: float = 0.01  # rad per update
    max_lidar_range: float = 30.0

    def __post_init__(self) -> None:
        if self.scan_rate_hz <= 0:
            raise ConfigError("scan_rate_hz must be positive")
        if not (0 <= self.odometry_noise_fraction < 1):
            raise ConfigError("odometry_noise_fraction must be in [0, 1)")


@dataclass
class SlamNavStats:
    """Telemetry: localization quality + data-dependent compute."""

    updates: int = 0
    pose_errors: list[float] = field(default_factory=list)
    iteration_history: list[int] = field(default_factory=list)
    total_flops: int = 0

    def record(self, pose_error: float, iterations: int, flops: int) -> None:
        self.updates += 1
        self.pose_errors.append(pose_error)
        self.iteration_history.append(iterations)
        self.total_flops += flops

    @property
    def mean_pose_error(self) -> float:
        return float(np.mean(self.pose_errors)) if self.pose_errors else 0.0

    @property
    def final_pose_error(self) -> float:
        return self.pose_errors[-1] if self.pose_errors else 0.0

    @property
    def mean_iterations(self) -> float:
        if not self.iteration_history:
            return 0.0
        return float(np.mean(self.iteration_history))


def slam_mapping_app(
    rt,
    pipeline: SlamPipeline,
    cpu,
    config: SlamNavConfig | None = None,
    stats: SlamNavStats | None = None,
    seed: int = 0,
    demux=None,
):
    """Target program: background mapping workload (no actuation).

    The multi-tenant scenario of the paper's introduction: a second
    application sharing the companion SoC with the controller.  It senses
    (lidar + state for odometry), localizes and maps — consuming CPU
    cycles that contend with the controller — but never commands the
    flight controller.  Requires the shared :class:`IoDemux` so its
    responses and the controller's are sorted to the right task.
    """
    config = config or SlamNavConfig()
    stats = stats if stats is not None else SlamNavStats()
    rng = np.random.default_rng(seed)
    period_cycles = int(cpu.frequency_hz / config.scan_rate_hz)
    last_truth: tuple[float, float, float] | None = None

    def _request(request_packet, response_type):
        if demux is not None:
            result = yield from demux.request(rt, request_packet, response_type)
        else:
            result = yield from rt.request_response(request_packet, response_type)
        return result

    while True:
        loop_start = yield from rt.current_cycle()
        state = yield from _request(state_request(), PacketType.STATE_RESP)
        tx, ty = state.values[0], state.values[1]
        tyaw = state.values[3]
        scan_packet = yield from _request(lidar_request(), PacketType.LIDAR_RESP)
        beams, fov_rad, _ts = scan_packet.values
        ranges = np.frombuffer(scan_packet.raw, dtype=np.float32).astype(float)
        beam_angles = np.linspace(-fov_rad / 2.0, fov_rad / 2.0, int(beams))

        if last_truth is None:
            odo = (0.0, 0.0, 0.0)
        else:
            lx, ly, lyaw = last_truth
            dx_w, dy_w = tx - lx, ty - ly
            cos_l, sin_l = math.cos(lyaw), math.sin(lyaw)
            dist = math.hypot(dx_w, dy_w)
            noise = config.odometry_noise_fraction * dist
            odo = (
                dx_w * cos_l + dy_w * sin_l + rng.normal(0.0, noise),
                -dx_w * sin_l + dy_w * cos_l + rng.normal(0.0, noise),
                math.atan2(math.sin(tyaw - lyaw), math.cos(tyaw - lyaw))
                + rng.normal(0.0, config.odometry_yaw_noise),
            )
        last_truth = (tx, ty, tyaw)

        update = pipeline.process(
            odo[0], odo[1], odo[2], beam_angles, ranges, config.max_lidar_range
        )
        yield from rt.compute(cpu.scalar_flops_cycles(update.flops))
        stats.record(
            math.hypot(update.x - tx, update.y - ty), update.match.iterations, update.flops
        )

        now = yield from rt.current_cycle()
        elapsed = now - loop_start
        if elapsed < period_cycles:
            yield from rt.delay(period_cycles - elapsed)


def slam_navigation_app(
    rt,
    pipeline: SlamPipeline,
    world: World,
    cpu,
    target_velocity: float,
    config: SlamNavConfig | None = None,
    stats: SlamNavStats | None = None,
    seed: int = 0,
):
    """Target program: lidar SLAM localization driving course following.

    ``world`` provides the *onboard course map* (the centerline to follow)
    — not ground truth: the vehicle's own pose always comes from the SLAM
    estimate.
    """
    config = config or SlamNavConfig()
    stats = stats if stats is not None else SlamNavStats()
    rng = np.random.default_rng(seed)
    period_cycles = int(cpu.frequency_hz / config.scan_rate_hz)
    last_truth: tuple[float, float, float] | None = None

    while True:
        loop_start = yield from rt.current_cycle()

        # Sense: true state (consumed only to synthesize noisy odometry
        # deltas, as a real wheel/visual odometer would produce).
        state = yield from rt.request_response(state_request(), PacketType.STATE_RESP)
        tx, ty, _tz, tyaw = state.values[0], state.values[1], state.values[2], state.values[3]
        scan_packet = yield from rt.request_response(
            lidar_request(), PacketType.LIDAR_RESP
        )
        beams, fov_rad, _ts = scan_packet.values
        ranges = np.frombuffer(scan_packet.raw, dtype=np.float32).astype(float)
        beam_angles = np.linspace(-fov_rad / 2.0, fov_rad / 2.0, int(beams))

        # Odometry: true body-frame delta + distance-proportional noise.
        if last_truth is None:
            odo = (0.0, 0.0, 0.0)
        else:
            lx, ly, lyaw = last_truth
            dx_w, dy_w = tx - lx, ty - ly
            cos_l, sin_l = math.cos(lyaw), math.sin(lyaw)
            dx_b = dx_w * cos_l + dy_w * sin_l
            dy_b = -dx_w * sin_l + dy_w * cos_l
            dyaw = math.atan2(math.sin(tyaw - lyaw), math.cos(tyaw - lyaw))
            dist = math.hypot(dx_b, dy_b)
            noise = config.odometry_noise_fraction * dist
            odo = (
                dx_b + rng.normal(0.0, noise),
                dy_b + rng.normal(0.0, noise),
                dyaw + rng.normal(0.0, config.odometry_yaw_noise),
            )
        last_truth = (tx, ty, tyaw)

        # Localize + map; charge the data-dependent compute cost.
        update = pipeline.process(
            odo[0], odo[1], odo[2], beam_angles, ranges, config.max_lidar_range
        )
        yield from rt.compute(cpu.scalar_flops_cycles(update.flops))
        pose_error = math.hypot(update.x - tx, update.y - ty)
        stats.record(pose_error, update.match.iterations, update.flops)

        # Act: steer from the *estimated* pose using the onboard map.
        s, d = world.centerline.project(np.array([update.x, update.y]))
        tangent = world.centerline.tangent_at_arclength(s)
        course_yaw = math.atan2(tangent[1], tangent[0])
        heading_err = math.atan2(
            math.sin(update.yaw - course_yaw), math.cos(update.yaw - course_yaw)
        )
        yield from rt.send_packet(
            target_command(
                target_velocity,
                -config.lateral_gain * d,
                -config.heading_gain * heading_err,
                config.altitude,
            )
        )

        now = yield from rt.current_cycle()
        elapsed = now - loop_start
        if elapsed < period_cycles:
            yield from rt.delay(period_cycles - elapsed)
