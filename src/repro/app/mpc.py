"""Nonlinear MPC trail-following controller (a Section 6 extension).

The paper's future-work section highlights "classical algorithms such as
SLAM and nonlinear MPC [that] build upon iterative optimization algorithms
... [with] data-dependent runtime behaviors and access patterns, where
RoSE can capture their performance implications on both hardware and
software."  This module implements that workload: a model-predictive
controller that tracks the course centerline using the UAV's kinematic
state and an onboard map, solved by iterative gradient descent whose
iteration count depends on how far the vehicle has been disturbed — a
*data-dependent* compute cost the cycle model charges per solve.

The MPC plans body-frame lateral-velocity and yaw-rate sequences over a
receding horizon, minimizing predicted lateral offset, heading error and
control effort under a kinematic rollout, then commands the first step
(standard receding-horizon operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.packets import PacketType, state_request, target_command
from repro.env.worlds import World
from repro.errors import ConfigError


@dataclass
class MpcConfig:
    """Horizon, weights and solver limits."""

    horizon: int = 10
    step_dt: float = 0.12  # s per prediction step
    max_iterations: int = 60
    min_iterations: int = 3
    convergence_tol: float = 1e-3  # stop when the cost improves less
    learning_rate: float = 0.12
    weight_offset: float = 1.0
    weight_heading: float = 0.6
    weight_control: float = 0.02
    max_lateral_velocity: float = 4.0
    max_yaw_rate: float = 1.5
    altitude: float = 1.5
    control_rate_hz: float = 50.0  # receding-horizon replan rate
    #: FLOPs per rollout step per solver iteration (rollout + numeric
    #: gradient of the stage cost); sets the cycle cost per iteration.
    flops_per_stage: int = 260

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigError("horizon must be at least 1")
        if not (0 < self.min_iterations <= self.max_iterations):
            raise ConfigError("iteration limits must satisfy 0 < min <= max")
        if self.step_dt <= 0:
            raise ConfigError("step_dt must be positive")

    @property
    def flops_per_iteration(self) -> int:
        return self.horizon * self.flops_per_stage


@dataclass
class MpcSolution:
    """One receding-horizon solve."""

    v_lateral: float
    yaw_rate: float
    iterations: int
    cost: float
    flops: int


@dataclass
class MpcStats:
    """Telemetry: the data-dependent runtime the experiments measure."""

    solves: int = 0
    total_iterations: int = 0
    iteration_history: list[int] = field(default_factory=list)

    def record(self, solution: MpcSolution) -> None:
        self.solves += 1
        self.total_iterations += solution.iterations
        self.iteration_history.append(solution.iterations)

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.solves if self.solves else 0.0


class MpcController:
    """Gradient-descent MPC over (lateral velocity, yaw rate) sequences."""

    def __init__(self, world: World, target_velocity: float, config: MpcConfig | None = None):
        if target_velocity <= 0:
            raise ConfigError("target_velocity must be positive")
        self.world = world
        self.target_velocity = target_velocity
        self.config = config or MpcConfig()
        # Warm start: the previous solution, shifted (receding horizon).
        self._warm = np.zeros((self.config.horizon, 2))

    # -- model -----------------------------------------------------------
    def _rollout_costs(self, controls: np.ndarray, state: tuple[float, float, float]) -> np.ndarray:
        """Predicted cost of a *batch* of control sequences.

        ``controls`` has shape (B, H, 2); returns (B,) costs.  The batch
        dimension carries the numeric-gradient perturbations, so one call
        prices a whole solver iteration.
        """
        cfg = self.config
        batch = controls.shape[0]
        x = np.full(batch, state[0])
        y = np.full(batch, state[1])
        yaw = np.full(batch, state[2])
        cost = np.zeros(batch)
        for k in range(cfg.horizon):
            v_lat = controls[:, k, 0]
            yaw_rate = controls[:, k, 1]
            yaw = yaw + yaw_rate * cfg.step_dt
            cos_y, sin_y = np.cos(yaw), np.sin(yaw)
            x = x + (self.target_velocity * cos_y - v_lat * sin_y) * cfg.step_dt
            y = y + (self.target_velocity * sin_y + v_lat * cos_y) * cfg.step_dt
            offsets, course_yaws = self.world.batch_course_frames(
                np.column_stack([x, y])
            )
            delta = yaw - course_yaws
            heading_err = np.arctan2(np.sin(delta), np.cos(delta))
            cost += (
                cfg.weight_offset * offsets**2
                + cfg.weight_heading * heading_err**2
                + cfg.weight_control * (v_lat**2 + yaw_rate**2)
            )
        return cost

    def _rollout_cost(self, controls: np.ndarray, state: tuple[float, float, float]) -> float:
        """Scalar convenience wrapper over :meth:`_rollout_costs`."""
        return float(self._rollout_costs(controls[None, :, :], state)[0])

    # -- solver -----------------------------------------------------------
    def solve(self, x: float, y: float, yaw: float) -> MpcSolution:
        """Run the iterative solver; iteration count is data-dependent."""
        cfg = self.config
        state = (x, y, yaw)
        controls = self._warm.copy()
        cost = self._rollout_cost(controls, state)
        iterations = 0
        eps = 1e-3
        limits = np.array([cfg.max_lateral_velocity, cfg.max_yaw_rate])
        n_vars = cfg.horizon * 2

        while iterations < cfg.max_iterations:
            iterations += 1
            # Numeric gradient: one batched rollout prices all 2H bumps.
            bumps = np.repeat(controls[None, :, :], n_vars, axis=0)
            bumps.reshape(n_vars, n_vars)[np.arange(n_vars), np.arange(n_vars)] += eps
            bump_costs = self._rollout_costs(bumps, state)
            grad = ((bump_costs - cost) / eps).reshape(cfg.horizon, 2)
            candidate = np.clip(controls - cfg.learning_rate * grad, -limits, limits)
            candidate_cost = self._rollout_cost(candidate, state)
            improvement = cost - candidate_cost
            if candidate_cost < cost:
                controls, cost = candidate, candidate_cost
            if iterations >= cfg.min_iterations and improvement < cfg.convergence_tol:
                break

        # Receding horizon: shift and keep as the next warm start.
        self._warm = np.vstack([controls[1:], controls[-1:]])
        return MpcSolution(
            v_lateral=float(controls[0, 0]),
            yaw_rate=float(controls[0, 1]),
            iterations=iterations,
            cost=cost,
            flops=iterations * cfg.flops_per_iteration,
        )


def mpc_navigation_app(
    rt,
    controller: MpcController,
    cpu,
    stats: MpcStats | None = None,
):
    """Target program: state-feedback MPC navigation.

    Each loop: request the kinematic state (through the flight-controller
    link, like a real companion computer over MAVLink), solve the MPC
    (compute cycles = data-dependent iterations x per-iteration FLOPs on
    the host core), and command the first planned control.
    """
    stats = stats if stats is not None else MpcStats()
    cfg = controller.config
    period_cycles = int(cpu.frequency_hz / cfg.control_rate_hz)
    while True:
        state = yield from rt.request_response(state_request(), PacketType.STATE_RESP)
        x, y, _z, yaw = state.values[0], state.values[1], state.values[2], state.values[3]
        solution = controller.solve(x, y, yaw)
        stats.record(solution)
        compute_cycles = cpu.scalar_flops_cycles(solution.flops)
        yield from rt.compute(compute_cycles)
        yield from rt.send_packet(
            target_command(
                controller.target_velocity,
                solution.v_lateral,
                solution.yaw_rate,
                cfg.altitude,
            )
        )
        # Fixed replan rate: idle out the remainder of the control period.
        if compute_cycles < period_cycles:
            yield from rt.delay(period_cycles - compute_cycles)
