"""Mission-level sweep helpers and derived metrics.

Thin, reusable wrappers over :func:`repro.core.cosim.run_mission` that
express the paper's experiment axes: hardware configuration (Figure 10),
DNN architecture (Figure 11), velocity target (Figure 12), static-vs-
dynamic runtime (Figure 13), the hardware x software product sweep
(Figure 14), and synchronization granularity (Figure 16).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import MissionResult, run_mission


def fly(config: CoSimConfig) -> MissionResult:
    """Alias of :func:`run_mission` for sweep-builder readability."""
    return run_mission(config)


def sweep_hardware(
    base: CoSimConfig, socs: tuple[str, ...] = ("A", "B", "C")
) -> dict[str, MissionResult]:
    """One mission per Table 2 hardware configuration."""
    return {soc: fly(replace(base, soc=soc)) for soc in socs}


def sweep_initial_angles(
    base: CoSimConfig, angles_deg: tuple[float, ...] = (-20.0, 0.0, 20.0)
) -> dict[float, MissionResult]:
    """Figure 10's initial-condition axis."""
    return {
        angle: fly(replace(base, initial_angle_deg=angle)) for angle in angles_deg
    }


def sweep_models(
    base: CoSimConfig, models: tuple[str, ...]
) -> dict[str, MissionResult]:
    """Figure 11 / 14's DNN-architecture axis."""
    return {model: fly(replace(base, model=model)) for model in models}


def sweep_velocities(
    base: CoSimConfig, velocities: tuple[float, ...] = (6.0, 9.0, 12.0)
) -> dict[float, MissionResult]:
    """Figure 12's velocity-target axis."""
    return {v: fly(replace(base, target_velocity=v)) for v in velocities}


def sweep_sync_granularity(
    base: CoSimConfig, cycles_per_sync: tuple[int, ...]
) -> dict[int, MissionResult]:
    """Figure 16's synchronization-granularity axis."""
    results = {}
    for cycles in cycles_per_sync:
        sync = SyncConfig(
            cycles_per_sync=cycles,
            soc_frequency_hz=base.sync.soc_frequency_hz,
            frame_rate_hz=base.sync.frame_rate_hz,
        )
        results[cycles] = fly(replace(base, sync=sync))
    return results


def compare_static_dynamic(
    base: CoSimConfig, static_models: tuple[str, ...] = ("resnet6", "resnet14")
) -> dict[str, MissionResult]:
    """Figure 13: static single-DNN missions plus the dynamic runtime."""
    results = {
        model: fly(replace(base, model=model, dynamic_runtime=False))
        for model in static_models
    }
    results["dynamic"] = fly(replace(base, dynamic_runtime=True))
    return results
