"""Companion-computer applications (the software the simulated SoC runs).

* :mod:`repro.app.perception` — the perception stage: either the
  calibrated behavioural classifier or a real trained CNN over the camera
  pixels, behind one interface.
* :mod:`repro.app.controller` — the DNN trail-navigation controller
  (Equation 2's confidence-scaled targets, or the argmax policy).
* :mod:`repro.app.deadline` — Equations 3-5's collision-deadline model.
* :mod:`repro.app.dynamic` — Section 5.3's dynamic runtime that switches
  between a high-accuracy and a low-latency network by deadline.
* :mod:`repro.app.mission` — mission-level sweep helpers and metrics.
"""

from repro.app.controller import (
    AppStats,
    ControllerGains,
    compute_targets,
    trail_navigation_app,
)
from repro.app.deadline import process_deadline, time_to_collision
from repro.app.dynamic import DynamicRuntimeConfig, dynamic_trail_app
from repro.app.perception import BehavioralPerception, CnnPerception, Perception

__all__ = [
    "AppStats",
    "ControllerGains",
    "compute_targets",
    "trail_navigation_app",
    "time_to_collision",
    "process_deadline",
    "DynamicRuntimeConfig",
    "dynamic_trail_app",
    "Perception",
    "BehavioralPerception",
    "CnnPerception",
]
