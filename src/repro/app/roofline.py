"""Roofline-style compute/safety analysis for UAV controllers.

Section 5.2 cites roofline-style bottleneck analysis for UAV onboard
compute (Krishnan et al. [32]): deadlines "can be used by models to set
constraints on robotic systems, such as maximum safe velocity".  This
module inverts the paper's Equations 3-5 into design-space curves:

* :func:`max_safe_velocity` — the fastest the UAV may fly given its
  controller's compute latency and an obstacle at a given depth;
* :func:`min_required_depth` — the sensing range a controller needs to be
  safe at a given velocity;
* :func:`safe_velocity_curve` — velocity-vs-latency series for plotting
  the controller design space (which DNN is safe at which speed).

Derivation: safety requires t_collision >= t_sensor + t_process +
t_actuation (Eq. 4) with t_collision = D / v (Eq. 3), hence
``v <= D / (t_sensor + t_process + t_actuation)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.deadline import DEFAULT_ACTUATION_LATENCY_S, DEFAULT_SENSOR_LATENCY_S
from repro.errors import ConfigError


def _check_latencies(sensor_s: float, actuation_s: float) -> None:
    if sensor_s < 0 or actuation_s < 0:
        raise ConfigError("latency contributions must be non-negative")


def max_safe_velocity(
    depth_m: float,
    process_latency_s: float,
    sensor_latency_s: float = DEFAULT_SENSOR_LATENCY_S,
    actuation_latency_s: float = DEFAULT_ACTUATION_LATENCY_S,
) -> float:
    """Fastest velocity satisfying Equation 4 for an obstacle at
    ``depth_m``."""
    _check_latencies(sensor_latency_s, actuation_latency_s)
    if depth_m < 0:
        raise ConfigError("depth must be non-negative")
    if process_latency_s < 0:
        raise ConfigError("process latency must be non-negative")
    total = sensor_latency_s + process_latency_s + actuation_latency_s
    if total <= 0:
        return float("inf")
    return depth_m / total


def min_required_depth(
    velocity_mps: float,
    process_latency_s: float,
    sensor_latency_s: float = DEFAULT_SENSOR_LATENCY_S,
    actuation_latency_s: float = DEFAULT_ACTUATION_LATENCY_S,
) -> float:
    """Minimum obstacle depth at which ``velocity_mps`` is safe."""
    _check_latencies(sensor_latency_s, actuation_latency_s)
    if velocity_mps < 0:
        raise ConfigError("velocity must be non-negative")
    return velocity_mps * (sensor_latency_s + process_latency_s + actuation_latency_s)


@dataclass(frozen=True)
class ControllerSafety:
    """One controller's point on the safety roofline."""

    name: str
    process_latency_s: float
    max_safe_velocity: float


def safe_velocity_curve(
    controllers: dict[str, float],
    depth_m: float,
    sensor_latency_s: float = DEFAULT_SENSOR_LATENCY_S,
    actuation_latency_s: float = DEFAULT_ACTUATION_LATENCY_S,
) -> list[ControllerSafety]:
    """Max safe velocity per controller (name -> compute latency seconds).

    Sorted fastest-safe first; the roofline view of "which DNN can fly how
    fast" given a sensing horizon.
    """
    curve = [
        ControllerSafety(
            name=name,
            process_latency_s=latency,
            max_safe_velocity=max_safe_velocity(
                depth_m, latency, sensor_latency_s, actuation_latency_s
            ),
        )
        for name, latency in controllers.items()
    ]
    return sorted(curve, key=lambda c: c.max_safe_velocity, reverse=True)
