"""Dynamic, environment-dependent runtime (Section 5.3).

"Instead of uniformly executing the same ResNet in all scenarios, we
adaptively select which DNN is used to generate control targets depending
on the system deadlines.  We determine the deadline by measuring
forward-facing depth-sensor readings from the UAV. ... When the deadline
is over a threshold, we use the classifier outputs for ResNet14.  However,
when the UAV is at risk of collision, we dynamically switch to ResNet6 so
that we can get updated control targets faster.  Furthermore ... we use
the argmax of both the angular and lateral classes when using ResNet6, so
that the UAV corrects its trajectory faster."

The program hosts two inference sessions; switching between them pays a
session re-activation cost (cold caches / weight refetch), which is why
the paper measures ~15% fewer total inferences for the dynamic runtime
than for a static ResNet14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.controller import AppStats, ControllerGains, compute_targets
from repro.app.deadline import DeadlinePolicy
from repro.core.packets import PacketType, camera_request, depth_request, target_command
from repro.dnn.runtime import SESSION_SWITCH_CYCLES


@dataclass
class DynamicRuntimeConfig:
    """Policy parameters for the adaptive selection."""

    policy: DeadlinePolicy = field(default_factory=DeadlinePolicy)
    gains: ControllerGains = field(default_factory=ControllerGains)
    switch_cycles: int = SESSION_SWITCH_CYCLES


def dynamic_trail_app(
    rt,
    session_hi,
    session_lo,
    perception_hi,
    perception_lo,
    target_velocity: float,
    config: DynamicRuntimeConfig | None = None,
    stats: AppStats | None = None,
):
    """Target program: deadline-adaptive dual-DNN controller.

    ``session_hi`` / ``perception_hi`` are the high-accuracy network
    (ResNet14 in the paper); ``session_lo`` / ``perception_lo`` the
    low-latency one (ResNet6, used with the argmax policy).
    """
    config = config or DynamicRuntimeConfig()
    stats = stats if stats is not None else AppStats()
    active_model: str | None = None

    while True:
        request_cycle = yield from rt.current_cycle()

        # Deadline measurement: forward depth at the current velocity.
        depth_packet = yield from rt.request_response(
            depth_request(), PacketType.DEPTH_RESP
        )
        depth = float(depth_packet.values[0])
        at_risk = config.policy.at_risk(depth, target_velocity)
        stats.registry.inc(
            "rose_app_deadline_checks_total", at_risk="true" if at_risk else "false"
        )
        if at_risk:
            session, perception, argmax = session_lo, perception_lo, True
        else:
            session, perception, argmax = session_hi, perception_hi, False

        # Deadline-miss accounting (Eq. 5): even the selected network may
        # be too slow for the measured time-to-collision.
        compute_s = session.report.total_cycles / session.cpu.frequency_hz
        if not config.policy.meets_deadline(depth, target_velocity, compute_s):
            stats.registry.inc("rose_app_deadline_misses_total")

        # Session re-activation cost when the selection changed.
        if active_model is not None and session.graph.name != active_model:
            stats.session_switches += 1
            yield from rt.compute(config.switch_cycles)
        active_model = session.graph.name

        frame = yield from rt.request_response(camera_request(), PacketType.CAMERA_RESP)
        yield from rt.run_inference(session)
        inference = perception.infer_packet(frame)
        v_forward, v_lateral, yaw_rate = compute_targets(
            inference, target_velocity, config.gains, argmax_policy=argmax
        )
        yield from rt.send_packet(
            target_command(v_forward, v_lateral, yaw_rate, config.gains.altitude)
        )
        response_cycle = yield from rt.current_cycle()
        stats.record(request_cycle, response_cycle, active_model)
