"""Sensor-fusion controller application (a Section 6 extension).

Runs the multi-backbone fusion network of :mod:`repro.dnn.fusion` with
*rate-decoupled* branches: the IMU backbone + fusion head execute at the
inertial sample rate, while the heavy camera backbone executes only every
``camera_every``-th iteration — the "branches of the network ... executed
at different rates" schedule the paper's future-work section describes.

Behaviourally, the high-rate path dead-reckons the heading error with the
gyro between camera fixes (the classic complementary-filter benefit of
fusing inertial data), so yaw corrections update an order of magnitude
faster than any camera-only controller, while lateral corrections update
at the camera rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.controller import ControllerGains
from repro.core.packets import PacketType, camera_request, imu_request, target_command
from repro.dnn.dataset import LEFT, RIGHT
from repro.errors import ConfigError
from repro.obs.declarations import mission_registry
from repro.obs.metrics import MetricsRegistry


@dataclass
class FusionConfig:
    """Rates and gains of the fusion controller."""

    imu_rate_hz: float = 100.0
    camera_every: int = 10  # camera branch runs every Nth IMU iteration
    heading_gain: float = 1.8  # rad/s of yaw-rate command per rad of error
    gains: ControllerGains = field(default_factory=ControllerGains)

    def __post_init__(self) -> None:
        if self.imu_rate_hz <= 0:
            raise ConfigError("imu_rate_hz must be positive")
        if self.camera_every < 1:
            raise ConfigError("camera_every must be at least 1")


@dataclass
class FusionStats:
    """Branch-execution telemetry."""

    imu_branch_runs: int = 0
    camera_branch_runs: int = 0
    head_runs: int = 0
    registry: MetricsRegistry = field(
        default_factory=mission_registry, repr=False, compare=False
    )

    # -- degradation telemetry (all zero on a healthy link), stored as
    # -- registry-backed views so the obs layer is the source of truth --
    @property
    def imu_timeouts(self) -> int:
        """IMU waits that expired (integration skipped)."""
        return int(
            self.registry.value("rose_fusion_sensor_timeouts_total", sensor="imu")
        )

    @imu_timeouts.setter
    def imu_timeouts(self, total: int) -> None:
        self.registry.advance_to(
            "rose_fusion_sensor_timeouts_total", total, sensor="imu"
        )

    @property
    def camera_timeouts(self) -> int:
        """Camera waits that expired (fix skipped)."""
        return int(
            self.registry.value("rose_fusion_sensor_timeouts_total", sensor="camera")
        )

    @camera_timeouts.setter
    def camera_timeouts(self, total: int) -> None:
        self.registry.advance_to(
            "rose_fusion_sensor_timeouts_total", total, sensor="camera"
        )

    @property
    def sensor_retries(self) -> int:
        """Requests re-issued after a timeout."""
        return int(self.registry.value("rose_fusion_sensor_retries_total"))

    @sensor_retries.setter
    def sensor_retries(self, total: int) -> None:
        self.registry.advance_to("rose_fusion_sensor_retries_total", total)

    @property
    def camera_rate_fraction(self) -> float:
        if self.imu_branch_runs == 0:
            return 0.0
        return self.camera_branch_runs / self.imu_branch_runs


def fusion_controller_app(
    rt,
    sessions,
    perception,
    target_velocity: float,
    cpu,
    config: FusionConfig | None = None,
    stats: FusionStats | None = None,
    sensor_timeout_cycles: int | None = None,
    sensor_retries: int = 0,
):
    """Target program: rate-decoupled fusion control loop.

    ``sessions`` is a :class:`repro.dnn.fusion.FusionSessions`;
    ``perception`` supplies the camera fix (behavioural classifier or a
    trained CNN).

    ``sensor_timeout_cycles`` arms graceful degradation on a faulty link:
    a lost IMU sample skips the gyro integration for that iteration (the
    dead-reckoned heading simply holds), a lost camera frame skips the
    fix and keeps dead-reckoning until the next one — the structure the
    complementary filter already tolerates.  ``None`` (the default)
    waits indefinitely, identical to the fault-free controller.
    """
    config = config or FusionConfig()
    stats = stats if stats is not None else FusionStats()
    period_cycles = int(cpu.frequency_hz / config.imu_rate_hz)
    beta_lateral, _ = config.gains.at_velocity(target_velocity)

    heading_estimate = 0.0  # dead-reckoned heading error (rad)
    lateral_correction = 0.0  # held between camera fixes
    last_imu_time: float | None = None
    iteration = 0

    while True:
        loop_start = yield from rt.current_cycle()

        # -- fast inertial path (every iteration) -----------------------
        imu = None
        for attempt in range(1 + sensor_retries):
            imu = yield from rt.request_response(
                imu_request(), PacketType.IMU_RESP, sensor_timeout_cycles
            )
            if imu is not None:
                break
            if attempt < sensor_retries:
                stats.sensor_retries += 1
        if imu is None:
            # Lost sample: hold the dead-reckoned heading this iteration.
            stats.imu_timeouts += 1
        else:
            _ax, _ay, _az, gyro_z, timestamp = imu.values
            if last_imu_time is not None:
                # The gyro integrates *changes* in heading between camera
                # fixes (course curvature is absorbed at each fix).
                heading_estimate += gyro_z * (timestamp - last_imu_time)
            last_imu_time = timestamp
            yield from rt.run_inference(sessions.imu)
            stats.imu_branch_runs += 1

        # -- slow visual path (every Nth iteration) ---------------------
        if iteration % config.camera_every == 0:
            frame = None
            for attempt in range(1 + sensor_retries):
                frame = yield from rt.request_response(
                    camera_request(), PacketType.CAMERA_RESP, sensor_timeout_cycles
                )
                if frame is not None:
                    break
                if attempt < sensor_retries:
                    stats.sensor_retries += 1
            if frame is None:
                # Lost fix: keep dead-reckoning until the next one.
                stats.camera_timeouts += 1
            else:
                yield from rt.run_inference(sessions.camera)
                stats.camera_branch_runs += 1
                inference = perception.infer_packet(frame)
                # Camera fix: re-anchor the dead-reckoned heading and
                # refresh the lateral correction (Equation 2's lateral
                # term).
                boundary = 0.131  # rad, the angular class half-width
                heading_estimate = boundary * float(
                    inference.angular_probs[LEFT] - inference.angular_probs[RIGHT]
                ) * 2.0
                lateral_correction = beta_lateral * float(
                    inference.lateral_probs[RIGHT] - inference.lateral_probs[LEFT]
                )

        # -- fusion head + actuation ------------------------------------
        yield from rt.run_inference(sessions.head)
        stats.head_runs += 1
        yaw_rate = -config.heading_gain * heading_estimate
        yield from rt.send_packet(
            target_command(
                target_velocity, lateral_correction, yaw_rate, config.gains.altitude
            )
        )

        iteration += 1
        now = yield from rt.current_cycle()
        elapsed = now - loop_start
        if elapsed < period_cycles:
            yield from rt.delay(period_cycles - elapsed)
