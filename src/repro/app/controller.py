"""The DNN trail-navigation controller application.

This is the program the simulated companion-computer SoC runs: an infinite
perceive-infer-act loop over the RoSE I/O device.

Each iteration: request a camera frame, wait for it (only satisfied at a
synchronization boundary), run the DNN (cycle cost from the scheduled
operator graph), convert the two softmax heads into velocity / angular
velocity targets per Equation 2, and send a TARGET_CMD to the flight
controller.

Sign conventions (Equation 2 maps onto the simulator's frames):

* class indices are 0 = left, 1 = center, 2 = right, naming where the
  *drone* sits/points relative to the trail;
* body-frame lateral velocity is positive to the left, yaw rate positive
  counter-clockwise;
* hence a "right" lateral classification commands positive (leftward)
  lateral velocity, and a "right" angular classification commands positive
  (CCW) yaw rate — both corrective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.packets import PacketType, camera_request, target_command
from repro.dnn.calibrated import TrailInference
from repro.dnn.dataset import LEFT, RIGHT
from repro.errors import ConfigError
from repro.obs.declarations import mission_registry
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class ControllerGains:
    """Equation 2's controller gains (the betas) plus the altitude hold.

    The betas are *velocity-scheduled*: the commanded correction magnitude
    scales linearly with the flight-velocity target (gain scheduling — a
    faster drone needs proportionally stronger corrections to hold the same
    trajectory curvature).  ``beta_lateral`` / ``beta_angular`` are the
    effective gains at :data:`REFERENCE_VELOCITY`.
    """

    beta_lateral: float = 3.0  # m/s per unit softmax difference, at 9 m/s
    beta_angular: float = 1.3  # rad/s per unit softmax difference, at 9 m/s
    altitude: float = 1.5

    REFERENCE_VELOCITY = 9.0  # m/s

    def __post_init__(self) -> None:
        if self.beta_lateral < 0 or self.beta_angular < 0:
            raise ConfigError("controller gains must be non-negative")

    def at_velocity(self, velocity: float) -> tuple[float, float]:
        """Effective (lateral, angular) gains at a velocity target."""
        scale = velocity / self.REFERENCE_VELOCITY
        return self.beta_lateral * scale, self.beta_angular * scale


def compute_targets(
    inference: TrailInference,
    target_velocity: float,
    gains: ControllerGains,
    argmax_policy: bool = False,
) -> tuple[float, float, float]:
    """Equation 2: ``(v_forward, v_lateral, yaw_rate)`` from the heads.

    With ``argmax_policy`` the softmax outputs are replaced by one-hot
    vectors, the compensation Section 5.2/5.3 applies to low-confidence
    networks so corrections come at full gain.
    """
    y_angular = inference.angular_probs
    y_lateral = inference.lateral_probs
    if argmax_policy:
        y_angular = np.eye(3)[inference.angular_pred]
        y_lateral = np.eye(3)[inference.lateral_pred]
    beta_lateral, beta_angular = gains.at_velocity(target_velocity)
    v_lateral = beta_lateral * float(y_lateral[RIGHT] - y_lateral[LEFT])
    yaw_rate = beta_angular * float(y_angular[RIGHT] - y_angular[LEFT])
    return target_velocity, v_lateral, yaw_rate


@dataclass
class InferenceRecord:
    """One control-loop iteration's measurements (simulated time)."""

    request_cycle: int
    response_cycle: int
    model: str

    @property
    def latency_cycles(self) -> int:
        return self.response_cycle - self.request_cycle


@dataclass
class AppStats:
    """Application-side telemetry shared with the host experiment.

    ``records`` measure the image-request -> DNN-output latency in target
    cycles — the quantity Figure 16(c) plots.
    """

    records: list[InferenceRecord] = field(default_factory=list)
    session_switches: int = 0
    inferences_by_model: dict[str, int] = field(default_factory=dict)
    registry: MetricsRegistry = field(
        default_factory=mission_registry, repr=False, compare=False
    )

    # -- degradation telemetry (all zero on a healthy link), stored as
    # -- registry-backed views so the obs layer is the source of truth --
    @property
    def sensor_timeouts(self) -> int:
        """Sensor waits that expired."""
        return int(self.registry.value("rose_app_sensor_timeouts_total"))

    @sensor_timeouts.setter
    def sensor_timeouts(self, total: int) -> None:
        self.registry.advance_to("rose_app_sensor_timeouts_total", total)

    @property
    def sensor_retries(self) -> int:
        """Requests re-issued after a timeout."""
        return int(self.registry.value("rose_app_sensor_retries_total"))

    @sensor_retries.setter
    def sensor_retries(self, total: int) -> None:
        self.registry.advance_to("rose_app_sensor_retries_total", total)

    @property
    def stale_frames_reused(self) -> int:
        """Iterations flown on the previous frame."""
        return int(self.registry.value("rose_app_stale_frames_total"))

    @stale_frames_reused.setter
    def stale_frames_reused(self, total: int) -> None:
        self.registry.advance_to("rose_app_stale_frames_total", total)

    @property
    def held_commands(self) -> int:
        """Iterations that re-sent the last command."""
        return int(self.registry.value("rose_app_held_commands_total"))

    @held_commands.setter
    def held_commands(self, total: int) -> None:
        self.registry.advance_to("rose_app_held_commands_total", total)

    @property
    def inference_count(self) -> int:
        return len(self.records)

    def latency_cycles(self) -> list[int]:
        return [r.latency_cycles for r in self.records]

    def mean_latency_ms(self, frequency_hz: float = 1e9) -> float:
        lats = self.latency_cycles()
        if not lats:
            return float("nan")
        return 1e3 * float(np.mean(lats)) / frequency_hz

    def record(self, request_cycle: int, response_cycle: int, model: str) -> None:
        record = InferenceRecord(request_cycle, response_cycle, model)
        self.records.append(record)
        self.inferences_by_model[model] = self.inferences_by_model.get(model, 0) + 1
        self.registry.inc("rose_app_inferences_total", model=model)
        self.registry.observe(
            "rose_app_inference_latency_cycles", record.latency_cycles, model=model
        )


def trail_navigation_app(
    rt,
    session,
    perception,
    target_velocity: float,
    gains: ControllerGains | None = None,
    stats: AppStats | None = None,
    argmax_policy: bool = False,
    demux=None,
    sensor_timeout_cycles: int | None = None,
    sensor_retries: int = 0,
):
    """Target program: the static single-DNN controller (Sections 5.1-5.2).

    ``rt`` is the :class:`~repro.soc.program.TargetRuntime`; ``session``
    the loaded :class:`~repro.dnn.runtime.InferenceSession`; ``perception``
    a :class:`~repro.app.perception.Perception`.  When sharing the SoC
    with other tasks, pass the shared :class:`~repro.soc.demux.IoDemux`
    so responses for neighbours are preserved.

    ``sensor_timeout_cycles`` arms the degradation path for a faulty
    link: a camera wait that expires is retried up to ``sensor_retries``
    times; if every attempt times out the controller *reuses the previous
    frame* (stale-but-sane perception), or — before any frame has ever
    arrived — simply re-sends the last command.  Left at ``None`` (the
    default) the wait is indefinite and behaviour is identical to the
    fault-free controller.
    """
    gains = gains or ControllerGains()
    stats = stats if stats is not None else AppStats()
    model_name = session.graph.name
    last_frame = None
    last_command = None
    while True:
        request_cycle = yield from rt.current_cycle()
        frame = None
        for attempt in range(1 + sensor_retries):
            if demux is not None:
                frame = yield from demux.request(
                    rt, camera_request(), PacketType.CAMERA_RESP, sensor_timeout_cycles
                )
            else:
                frame = yield from rt.request_response(
                    camera_request(), PacketType.CAMERA_RESP, sensor_timeout_cycles
                )
            if frame is not None:
                break
            stats.sensor_timeouts += 1
            if attempt < sensor_retries:
                stats.sensor_retries += 1
        if frame is None:
            if last_frame is None:
                # Flying blind with no history: hold the last command (if
                # any) and try again next iteration.
                if last_command is not None:
                    yield from rt.send_packet(last_command)
                    stats.held_commands += 1
                continue
            frame = last_frame
            stats.stale_frames_reused += 1
        else:
            last_frame = frame
        yield from rt.run_inference(session)
        inference = perception.infer_packet(frame)
        v_forward, v_lateral, yaw_rate = compute_targets(
            inference, target_velocity, gains, argmax_policy=argmax_policy
        )
        command = target_command(v_forward, v_lateral, yaw_rate, gains.altitude)
        yield from rt.send_packet(command)
        last_command = command
        response_cycle = yield from rt.current_cycle()
        stats.record(request_cycle, response_cycle, model_name)
