"""Collision-deadline model (Equations 3-5).

Section 5.2 defines the compute-latency budget a UAV controller must meet:

    t_collision = D_obj / velocity                         (Eq. 3)
    t_collision >= t_sensor + t_process + t_actuation      (Eq. 4)
    t_process  <= t_collision - t_sensor - t_actuation     (Eq. 5)

``D_obj`` is the depth of the closest object along the current heading.
The dynamic runtime (Section 5.3) compares the Eq. 5 budget against a
threshold to choose between a high-accuracy and a low-latency network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Default latency contributions outside compute.  Sensor latency is one
#: camera frame; actuation latency covers the flight-controller loop plus
#: airframe response.
DEFAULT_SENSOR_LATENCY_S = 1.0 / 60.0
DEFAULT_ACTUATION_LATENCY_S = 0.15


def time_to_collision(depth_m: float, velocity_mps: float) -> float:
    """Equation 3: seconds until impact at constant velocity."""
    if velocity_mps <= 0:
        return float("inf")
    if depth_m < 0:
        raise ConfigError(f"depth must be non-negative, got {depth_m}")
    return depth_m / velocity_mps


def process_deadline(
    depth_m: float,
    velocity_mps: float,
    sensor_latency_s: float = DEFAULT_SENSOR_LATENCY_S,
    actuation_latency_s: float = DEFAULT_ACTUATION_LATENCY_S,
) -> float:
    """Equation 5: the compute-time budget (may be negative: already late)."""
    if sensor_latency_s < 0 or actuation_latency_s < 0:
        raise ConfigError("latency contributions must be non-negative")
    return time_to_collision(depth_m, velocity_mps) - sensor_latency_s - actuation_latency_s


@dataclass(frozen=True)
class DeadlinePolicy:
    """Threshold rule used by the dynamic runtime.

    When the Eq. 5 budget falls below ``threshold_s`` the runtime is "at
    risk of collision" and must switch to the low-latency network.
    """

    threshold_s: float = 0.40
    sensor_latency_s: float = DEFAULT_SENSOR_LATENCY_S
    actuation_latency_s: float = DEFAULT_ACTUATION_LATENCY_S

    def at_risk(self, depth_m: float, velocity_mps: float) -> bool:
        budget = process_deadline(
            depth_m, velocity_mps, self.sensor_latency_s, self.actuation_latency_s
        )
        return budget < self.threshold_s

    def meets_deadline(self, depth_m: float, velocity_mps: float, compute_s: float) -> bool:
        """Equation 4 check for a known compute latency."""
        budget = process_deadline(
            depth_m, velocity_mps, self.sensor_latency_s, self.actuation_latency_s
        )
        return compute_s <= budget
