"""The roslite node graph: topics, publishers, subscribers, rates.

Nodes are cooperative tasks on the multitasking SoC engine; the graph is
plain shared state between them (like the I/O demux).  Publishing copies
the message into every subscriber's bounded queue — dropping the oldest
message on overflow, ROS's default queue behaviour — and charges the
message's byte size to the publishing task through the CPU copy-cost
model.  Receiving polls the queue, sleeping between polls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.soc.cpu import CpuModel
from repro.soc.program import TargetRuntime

#: Fixed per-publish middleware overhead (serialization headers, queue
#: bookkeeping) in CPU cycles.
PUBLISH_OVERHEAD_CYCLES = 1_500
#: Poll interval while a subscriber waits for a message.
SUBSCRIBE_POLL_CYCLES = 20_000


@dataclass
class TopicStats:
    published: int = 0
    delivered: int = 0
    dropped: int = 0


class Subscriber:
    """A bounded per-subscriber queue on one topic."""

    def __init__(self, topic: "Topic", queue_size: int):
        if queue_size < 1:
            raise ConfigError("queue_size must be at least 1")
        self.topic = topic
        self.queue: deque = deque()
        self.queue_size = queue_size

    @property
    def pending(self) -> int:
        return len(self.queue)

    def _push(self, message) -> bool:
        """Returns False when the oldest message was dropped."""
        dropped = False
        if len(self.queue) >= self.queue_size:
            self.queue.popleft()
            dropped = True
        self.queue.append(message)
        return not dropped

    def receive(self, rt: TargetRuntime, timeout_cycles: int | None = None):
        """Generator helper: wait for the next message (None on timeout)."""
        waited = 0
        while True:
            if self.queue:
                return self.queue.popleft()
            if timeout_cycles is not None and waited >= timeout_cycles:
                return None
            yield from rt.delay(SUBSCRIBE_POLL_CYCLES)
            waited += SUBSCRIBE_POLL_CYCLES

    def latest(self, rt: TargetRuntime):
        """Generator helper: drain the queue and return the newest message
        (or None if empty) — the sample-latest pattern control nodes use."""
        yield from rt.delay(1)
        message = None
        while self.queue:
            message = self.queue.popleft()
        return message


class Publisher:
    """Handle for publishing onto one topic."""

    def __init__(self, topic: "Topic", cpu: CpuModel):
        self.topic = topic
        self._cpu = cpu

    def publish(self, rt: TargetRuntime, message) -> object:
        """Generator helper: copy the message to every subscriber.

        Charges the serialization/copy cost (bytes x subscribers) plus a
        fixed middleware overhead to the calling task.
        """
        size = message.byte_size() if hasattr(message, "byte_size") else 64
        copies = max(1, len(self.topic.subscribers))
        cost = PUBLISH_OVERHEAD_CYCLES + copies * self._cpu.copy_cycles(size)
        yield from rt.compute(cost)
        self.topic.stats.published += 1
        for subscriber in self.topic.subscribers:
            if subscriber._push(message):
                self.topic.stats.delivered += 1
            else:
                self.topic.stats.dropped += 1
                self.topic.stats.delivered += 1


@dataclass
class Topic:
    name: str
    subscribers: list[Subscriber] = field(default_factory=list)
    stats: TopicStats = field(default_factory=TopicStats)


class RosGraph:
    """The process-local master: topic registry shared by node tasks."""

    def __init__(self, cpu: CpuModel):
        self.cpu = cpu
        self._topics: dict[str, Topic] = {}

    def _topic(self, name: str) -> Topic:
        if not name.startswith("/"):
            raise ConfigError(f"topic names start with '/': {name!r}")
        if name not in self._topics:
            self._topics[name] = Topic(name=name)
        return self._topics[name]

    def advertise(self, name: str) -> Publisher:
        return Publisher(self._topic(name), self.cpu)

    def subscribe(self, name: str, queue_size: int = 2) -> Subscriber:
        topic = self._topic(name)
        subscriber = Subscriber(topic, queue_size)
        topic.subscribers.append(subscriber)
        return subscriber

    def topic_stats(self, name: str) -> TopicStats:
        return self._topic(name).stats

    @property
    def topics(self) -> list[str]:
        return sorted(self._topics)


class Rate:
    """Simulated-time loop pacing (the rospy.Rate pattern)."""

    def __init__(self, hz: float, cpu: CpuModel):
        if hz <= 0:
            raise ConfigError("rate must be positive")
        self.period_cycles = int(cpu.frequency_hz / hz)
        self._last: int | None = None

    def sleep(self, rt: TargetRuntime):
        """Generator helper: sleep out the remainder of the period."""
        now = yield from rt.current_cycle()
        if self._last is None:
            self._last = now
        elapsed = now - self._last
        if elapsed < self.period_cycles:
            yield from rt.delay(self.period_cycles - elapsed)
            self._last += self.period_cycles
        else:
            self._last = now
