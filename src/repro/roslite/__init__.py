"""roslite: a minimal ROS-style middleware for target programs.

The paper's software build flow "provides a port of the Robot Operating
System (ROS) for RISC-V ... Both the roscpp and rospy interfaces are
supported" (Section 3.3).  This package is the analog for the simulated
SoC: a publish/subscribe message graph whose nodes are cooperative tasks
on the multitasking SoC engine, with message-passing costs charged to the
cycle model.

* :mod:`repro.roslite.msgs` — common message types (Header, Image, Imu,
  LaserScan, Twist), with byte-size accounting for the copy-cost model.
* :mod:`repro.roslite.graph` — the node graph: topics, publishers,
  subscribers, and a simulated-time Rate.
* :mod:`repro.roslite.trail_nodes` — the trail-navigation controller
  decomposed into ROS-style nodes (camera driver -> perception/control ->
  actuation), wired over topics and run as concurrent SoC tasks.
"""

from repro.roslite.graph import Publisher, Rate, RosGraph, Subscriber
from repro.roslite.msgs import Header, Image, Imu, LaserScan, Twist

__all__ = [
    "RosGraph",
    "Publisher",
    "Subscriber",
    "Rate",
    "Header",
    "Image",
    "Imu",
    "LaserScan",
    "Twist",
]
