"""The trail-navigation controller as a roslite node pipeline.

Decomposes the monolithic controller application into the node structure
a real ROS deployment would use, each node a concurrent task on the SoC:

* **camera_driver_node** — pulls frames over the RoSE I/O and publishes
  ``/camera/image`` (sensor driver);
* **perception_control_node** — subscribes to images, runs the DNN, and
  publishes velocity commands on ``/cmd_vel`` (the TrailNet controller);
* **actuation_node** — subscribes to ``/cmd_vel`` and forwards targets to
  the flight controller over the RoSE I/O (the MAVLink bridge).

End-to-end latency (frame capture -> TARGET_CMD written) is measured via
the message headers' capture stamps — it includes every queue hop and all
middleware copy costs, so the pipeline is directly comparable to the
monolithic application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.controller import AppStats, ControllerGains, compute_targets
from repro.core.packets import PacketType, camera_request, target_command
from repro.dnn.calibrated import TrailInference
from repro.roslite.graph import RosGraph, Rate
from repro.roslite.msgs import Header, Image, Twist
from repro.soc.demux import IoDemux


@dataclass
class TrailPipeline:
    """Shared wiring for the three nodes."""

    graph: RosGraph
    demux: IoDemux
    stats: AppStats = field(default_factory=AppStats)

    @staticmethod
    def create(cpu) -> "TrailPipeline":
        return TrailPipeline(graph=RosGraph(cpu), demux=IoDemux())


def camera_driver_node(rt, pipeline: TrailPipeline, cpu, rate_hz: float = 15.0):
    """Sensor driver: RoSE I/O camera -> /camera/image."""
    publisher = pipeline.graph.advertise("/camera/image")
    rate = Rate(rate_hz, cpu)
    while True:
        capture_cycle = yield from rt.current_cycle()
        frame = yield from pipeline.demux.request(
            rt, camera_request(), PacketType.CAMERA_RESP
        )
        height, width, _ts, heading_error, lateral_offset, half_width = frame.values
        yield from publisher.publish(
            rt,
            Image(
                header=Header(stamp_cycle=capture_cycle, frame_id="fpv"),
                height=int(height),
                width=int(width),
                data=frame.raw,
                heading_error=heading_error,
                lateral_offset=lateral_offset,
                half_width=half_width,
            ),
        )
        yield from rate.sleep(rt)


def perception_control_node(
    rt,
    pipeline: TrailPipeline,
    session,
    perception,
    target_velocity: float,
    gains: ControllerGains | None = None,
):
    """TrailNet controller: /camera/image -> DNN -> /cmd_vel."""
    gains = gains or ControllerGains()
    images = pipeline.graph.subscribe("/camera/image", queue_size=1)
    commands = pipeline.graph.advertise("/cmd_vel")
    while True:
        image = yield from images.receive(rt)
        yield from rt.run_inference(session)
        inference = _infer_image(perception, image)
        v_forward, v_lateral, yaw_rate = compute_targets(
            inference, target_velocity, gains
        )
        yield from commands.publish(
            rt,
            Twist(
                header=image.header,  # propagate the capture stamp
                linear_x=v_forward,
                linear_y=v_lateral,
                linear_z=gains.altitude,
                angular_z=yaw_rate,
            ),
        )


def actuation_node(rt, pipeline: TrailPipeline, session_name: str = "resnet"):
    """MAVLink bridge: /cmd_vel -> RoSE TARGET_CMD."""
    commands = pipeline.graph.subscribe("/cmd_vel", queue_size=1)
    while True:
        twist = yield from commands.receive(rt)
        yield from rt.send_packet(
            target_command(
                twist.linear_x, twist.linear_y, twist.angular_z, twist.linear_z
            )
        )
        done_cycle = yield from rt.current_cycle()
        pipeline.stats.record(twist.header.stamp_cycle, done_cycle, session_name)


def _infer_image(perception, image: Image) -> TrailInference:
    """Adapt an :class:`Image` message to the perception interface."""
    from repro.core.packets import camera_response

    packet = camera_response(
        image.height,
        image.width,
        float(image.header.stamp_cycle) / 1e9,
        image.heading_error,
        image.lateral_offset,
        image.half_width,
        image.data,
    )
    return perception.infer_packet(packet)


def load_trail_pipeline(
    soc,
    perception,
    session,
    target_velocity: float,
    gains: ControllerGains | None = None,
    camera_rate_hz: float = 15.0,
) -> TrailPipeline:
    """Install the three-node pipeline on a :class:`~repro.soc.soc.Soc`."""
    pipeline = TrailPipeline.create(soc.cpu)
    soc.load_program(
        lambda rt: camera_driver_node(rt, pipeline, soc.cpu, rate_hz=camera_rate_hz),
        name="camera-driver",
    )
    soc.add_program(
        lambda rt: perception_control_node(
            rt, pipeline, session, perception, target_velocity, gains
        ),
        name="perception-control",
    )
    soc.add_program(
        lambda rt: actuation_node(rt, pipeline, session_name=session.graph.name),
        name="actuation",
    )
    return pipeline
