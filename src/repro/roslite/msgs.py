"""Common roslite message types.

Mirrors the ROS ``common_msgs`` shapes the paper's workloads use (sensor
images, IMU samples, laser scans, velocity commands).  Every message
reports its serialized size so the middleware can charge realistic
copy costs when it crosses a topic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Header:
    """Message metadata: capture cycle (simulated) and frame id."""

    stamp_cycle: int = 0
    frame_id: str = ""

    BYTE_SIZE = 16

    def byte_size(self) -> int:
        return self.BYTE_SIZE


@dataclass(frozen=True)
class Image:
    """A camera frame (uint8 grayscale payload)."""

    header: Header
    height: int
    width: int
    data: bytes
    #: Ground-truth course metadata rides along, as in the camera packet.
    heading_error: float = 0.0
    lateral_offset: float = 0.0
    half_width: float = 1.6

    def byte_size(self) -> int:
        return self.header.byte_size() + 8 + len(self.data) + 24


@dataclass(frozen=True)
class Imu:
    """An inertial sample."""

    header: Header
    accel: tuple[float, float, float]
    gyro_z: float

    def byte_size(self) -> int:
        return self.header.byte_size() + 32


@dataclass(frozen=True)
class LaserScan:
    """A planar lidar scan."""

    header: Header
    fov_rad: float
    ranges: bytes  # packed float32

    def byte_size(self) -> int:
        return self.header.byte_size() + 8 + len(self.ranges)


@dataclass(frozen=True)
class Twist:
    """A velocity command (the subset a UAV velocity target needs)."""

    header: Header
    linear_x: float = 0.0  # forward, m/s
    linear_y: float = 0.0  # leftward, m/s
    linear_z: float = 0.0  # altitude target, m (non-standard, documented)
    angular_z: float = 0.0  # yaw rate, rad/s

    def byte_size(self) -> int:
        return self.header.byte_size() + 32
