"""Ackermann (car) vehicle model — the artifact's "car vs drone" option.

The RoSE artifact exposes a simulation parameter for "deploying a car vs a
drone simulation" (appendix A.8.3).  This module provides the car side: a
kinematic bicycle model with steering-rate and acceleration limits, plus a
low-level controller that tracks the same :class:`VelocityTarget` commands
the companion computer already emits — so every controller application
(DNN trail follower, MPC) drives a car without modification.

Mapping of the command interface onto Ackermann kinematics:

* ``v_forward`` — longitudinal speed target (throttle/brake PID);
* ``yaw_rate``  — tracked by steering: delta = atan(L * r / v);
* ``v_lateral`` — cars cannot translate sideways; ignored;
* ``altitude``  — ignored (ground vehicle).

The car exposes the same dynamics protocol as the quadrotor
(:class:`~repro.env.physics.QuadrotorDynamics`), so the environment
simulator, sensors, camera and collision handling are shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.flightctl import Pid, PidGains, VelocityTarget
from repro.env.physics import AccelCommand, CollisionEvent, DroneState
from repro.env.worlds import World
from repro.errors import SimulationError


@dataclass
class CarParams:
    """Bicycle-model parameters."""

    wheelbase: float = 2.5  # m
    max_accel: float = 4.0  # m/s^2
    max_brake: float = 8.0  # m/s^2
    max_speed: float = 20.0  # m/s
    max_steer: float = 0.45  # rad
    max_steer_rate: float = 1.2  # rad/s
    drag: float = 0.12  # 1/s
    collision_radius: float = 0.8  # m (half car width-ish)
    collision_speed_retention: float = 0.1
    recovery_time: float = 2.0  # s

    def __post_init__(self) -> None:
        if self.wheelbase <= 0:
            raise SimulationError("wheelbase must be positive")
        if self.max_steer <= 0 or self.max_steer_rate <= 0:
            raise SimulationError("steering limits must be positive")


@dataclass
class CarCommand:
    """Low-level command: longitudinal acceleration + steering rate."""

    accel: float = 0.0
    steer_rate: float = 0.0


class CarDynamics:
    """Kinematic bicycle model with the quadrotor dynamics' protocol.

    State reuses :class:`DroneState`: ``u`` is the longitudinal speed,
    ``v`` is always zero (no sideslip in the kinematic model), ``r``
    follows from speed and steering angle, ``z``/``vz`` stay zero.
    """

    def __init__(
        self,
        world: World,
        params: CarParams | None = None,
        initial_state: DroneState | None = None,
    ):
        self.world = world
        self.params = params or CarParams()
        self.state = initial_state.copy() if initial_state else DroneState()
        self.state.z = 0.0
        self.steering_angle = 0.0
        self.collisions: list[CollisionEvent] = []
        self.time = 0.0
        self._recovery_until = -1.0
        self._applied = AccelCommand()

    @property
    def recovering(self) -> bool:
        return self.time < self._recovery_until

    @property
    def applied_acceleration(self) -> AccelCommand:
        """Longitudinal + centripetal acceleration, for the IMU model."""
        return self._applied

    def reset(self, state: DroneState) -> None:
        self.state = state.copy()
        self.state.z = 0.0
        self.steering_angle = 0.0
        self.collisions = []
        self.time = 0.0
        self._recovery_until = -1.0
        self._applied = AccelCommand()

    # ------------------------------------------------------------------
    def step(self, command: CarCommand, dt: float) -> None:
        p = self.params
        st = self.state

        if self.recovering:
            command = CarCommand(accel=-st.u / max(dt, 1e-6), steer_rate=0.0)

        accel = float(np.clip(command.accel, -p.max_brake, p.max_accel))
        steer_rate = float(
            np.clip(command.steer_rate, -p.max_steer_rate, p.max_steer_rate)
        )

        self.steering_angle = float(
            np.clip(self.steering_angle + steer_rate * dt, -p.max_steer, p.max_steer)
        )
        st.u = float(np.clip(st.u + (accel - p.drag * st.u) * dt, 0.0, p.max_speed))
        st.v = 0.0

        # Bicycle model: yaw rate from speed and steering.
        st.r = st.u * math.tan(self.steering_angle) / p.wheelbase
        st.yaw = math.atan2(
            math.sin(st.yaw + st.r * dt), math.cos(st.yaw + st.r * dt)
        )

        self._applied = AccelCommand(
            a_forward=accel, a_lateral=st.u * st.r, a_vertical=0.0, yaw_accel=0.0
        )

        new_x = st.x + st.u * math.cos(st.yaw) * dt
        new_y = st.y + st.u * math.sin(st.yaw) * dt
        if self.world.in_collision(np.array([new_x, new_y]), p.collision_radius):
            if not self.recovering:
                self._handle_collision(new_x, new_y)
        else:
            st.x, st.y = new_x, new_y

        self.time += dt

    def _handle_collision(self, new_x: float, new_y: float) -> None:
        p = self.params
        st = self.state
        self.collisions.append(
            CollisionEvent(time=self.time, x=new_x, y=new_y, speed=st.u)
        )
        st.u *= p.collision_speed_retention
        st.r = 0.0
        self.steering_angle = 0.0
        self._applied = AccelCommand()
        self._recovery_until = self.time + p.recovery_time


class CarController:
    """Tracks :class:`VelocityTarget` commands with throttle + steering.

    The drop-in counterpart of the quadrotor's SimpleFlight controller:
    same target interface, same most-recent-wins semantics.
    """

    def __init__(self, params: CarParams | None = None):
        self.params = params or CarParams()
        self._speed_pid = Pid(PidGains(kp=1.6, ki=0.3, output_limit=self.params.max_accel))
        self._steer_pid = Pid(PidGains(kp=4.0, output_limit=self.params.max_steer_rate))
        self.target = VelocityTarget(0.0, 0.0, 0.0, 0.0)
        self.armed = False
        self.targets_received = 0

    def reset(self) -> None:
        self._speed_pid.reset()
        self._steer_pid.reset()
        self.target = VelocityTarget(0.0, 0.0, 0.0, 0.0)
        self.armed = False
        self.targets_received = 0

    def arm(self, altitude: float = 0.0) -> None:
        """Enable the drivetrain ("takeoff" for a ground vehicle)."""
        self.armed = True
        self.target = VelocityTarget(0.0, 0.0, 0.0, 0.0)

    def set_target(self, target: VelocityTarget) -> None:
        self.target = target
        self.targets_received += 1

    def update(self, dynamics: CarDynamics, dt: float) -> CarCommand:
        if not self.armed:
            return CarCommand()
        st = dynamics.state
        p = self.params
        accel = self._speed_pid.update(self.target.v_forward - st.u, dt)
        # Track the yaw-rate target through the steering angle.  A lateral
        # velocity target cannot be realized by a non-holonomic vehicle;
        # the standard adapter folds it into the heading: steering toward
        # the commanded lateral motion at the current speed.
        speed = max(st.u, 0.5)  # avoid the singular stationary case
        yaw_rate_target = self.target.yaw_rate + self.target.v_lateral / speed
        desired_steer = float(
            np.clip(
                math.atan(p.wheelbase * yaw_rate_target / speed),
                -p.max_steer,
                p.max_steer,
            )
        )
        steer_rate = self._steer_pid.update(desired_steer - dynamics.steering_angle, dt)
        return CarCommand(accel=accel, steer_rate=steer_rate)
