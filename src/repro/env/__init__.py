"""Environment simulation substrate (the AirSim substitute).

This package provides a frame-stepped quadrotor environment simulator with
procedural corridor worlds, a software-rasterized first-person camera, IMU
and depth sensors, and a SimpleFlight-style cascaded PID flight controller.
It exposes the same *surface* the paper's synchronizer needs from AirSim:
discrete time-stepping plus an RPC-style API for sensor reads and actuation.
"""

from repro.env.geometry import Pose2, Ray2, Segment2
from repro.env.worlds import World, s_shape_world, tunnel_world
from repro.env.physics import DroneState, QuadrotorDynamics
from repro.env.flightctl import SimpleFlightController, VelocityTarget
from repro.env.sensors import DepthSensor, Imu, ImuReading
from repro.env.camera import FpvCamera
from repro.env.simulator import EnvSimulator, EnvConfig
from repro.env.rpc import RpcClient, RpcServer

__all__ = [
    "Pose2",
    "Ray2",
    "Segment2",
    "World",
    "tunnel_world",
    "s_shape_world",
    "DroneState",
    "QuadrotorDynamics",
    "SimpleFlightController",
    "VelocityTarget",
    "Imu",
    "ImuReading",
    "DepthSensor",
    "FpvCamera",
    "EnvSimulator",
    "EnvConfig",
    "RpcClient",
    "RpcServer",
]
