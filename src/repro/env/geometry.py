"""Planar geometry primitives used by the environment simulator.

The UAV experiments in the paper are corridor-navigation tasks where the
relevant geometry is planar (the drone holds altitude); this module provides
the 2D primitives the worlds, physics, sensors and renderer are built on:
segments, rays, poses, distance queries and ray casting.

All heavy queries accept numpy arrays so the renderer can cast a whole
camera's worth of rays in one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


def wrap_angle(theta: float) -> float:
    """Wrap an angle to the interval (-pi, pi]."""
    wrapped = math.fmod(theta + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def angle_difference(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` between two angles."""
    return wrap_angle(a - b)


@dataclass(frozen=True)
class Pose2:
    """A planar pose: position ``(x, y)`` and heading ``yaw`` (radians).

    ``yaw = 0`` points along +x; positive yaw rotates counter-clockwise.
    """

    x: float
    y: float
    yaw: float

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    @property
    def forward(self) -> np.ndarray:
        """Unit vector in the heading direction."""
        return np.array([math.cos(self.yaw), math.sin(self.yaw)])

    @property
    def left(self) -> np.ndarray:
        """Unit vector 90 degrees counter-clockwise from the heading."""
        return np.array([-math.sin(self.yaw), math.cos(self.yaw)])

    def transform_to_body(self, point: np.ndarray) -> np.ndarray:
        """Express a world-frame point in this pose's body frame."""
        delta = np.asarray(point, dtype=float) - self.position
        return np.array([float(delta @ self.forward), float(delta @ self.left)])

    def transform_to_world(self, point: np.ndarray) -> np.ndarray:
        """Express a body-frame point in the world frame."""
        point = np.asarray(point, dtype=float)
        return self.position + point[0] * self.forward + point[1] * self.left


@dataclass(frozen=True)
class Segment2:
    """A 2D line segment from ``a`` to ``b`` (each an ``(x, y)`` pair)."""

    ax: float
    ay: float
    bx: float
    by: float

    @property
    def a(self) -> np.ndarray:
        return np.array([self.ax, self.ay])

    @property
    def b(self) -> np.ndarray:
        return np.array([self.bx, self.by])

    @property
    def length(self) -> float:
        return float(math.hypot(self.bx - self.ax, self.by - self.ay))

    def point_at(self, t: float) -> np.ndarray:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return np.array(
            [self.ax + t * (self.bx - self.ax), self.ay + t * (self.by - self.ay)]
        )

    def distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the closest point on the
        segment."""
        p = np.asarray(point, dtype=float)
        d = self.b - self.a
        denom = float(d @ d)
        if denom < _EPS:
            return float(np.linalg.norm(p - self.a))
        t = float(np.clip((p - self.a) @ d / denom, 0.0, 1.0))
        closest = self.a + t * d
        return float(np.linalg.norm(p - closest))


@dataclass(frozen=True)
class Ray2:
    """A 2D ray: origin plus unit direction."""

    ox: float
    oy: float
    dx: float
    dy: float

    @staticmethod
    def from_pose(pose: Pose2, relative_angle: float = 0.0) -> "Ray2":
        theta = pose.yaw + relative_angle
        return Ray2(pose.x, pose.y, math.cos(theta), math.sin(theta))


class SegmentSoup:
    """A batch of segments stored column-wise for vectorized queries.

    The worlds store their wall geometry in one soup so the depth sensor
    and camera renderer can intersect many rays against all walls with
    numpy broadcasting rather than Python loops.
    """

    def __init__(self, segments: list[Segment2]):
        if not segments:
            raise ValueError("SegmentSoup requires at least one segment")
        self.segments = list(segments)
        self._ax = np.array([s.ax for s in segments])
        self._ay = np.array([s.ay for s in segments])
        self._dx = np.array([s.bx - s.ax for s in segments])
        self._dy = np.array([s.by - s.ay for s in segments])

    def __len__(self) -> int:
        return len(self.segments)

    def min_distance(self, point: np.ndarray) -> float:
        """Distance from ``point`` to the nearest segment in the soup."""
        p = np.asarray(point, dtype=float)
        px = p[0] - self._ax
        py = p[1] - self._ay
        denom = self._dx * self._dx + self._dy * self._dy
        denom = np.where(denom < _EPS, 1.0, denom)
        t = np.clip((px * self._dx + py * self._dy) / denom, 0.0, 1.0)
        cx = px - t * self._dx
        cy = py - t * self._dy
        return float(np.sqrt(np.min(cx * cx + cy * cy)))

    def cast_rays(
        self,
        origin: np.ndarray,
        angles: np.ndarray,
        max_range: float = 1e9,
    ) -> np.ndarray:
        """Cast rays from ``origin`` at the given world-frame ``angles``.

        Returns an array of hit distances, one per angle; misses report
        ``max_range``.  Uses the standard ray/segment parametric solve,
        broadcast over (rays x segments).
        """
        origin = np.asarray(origin, dtype=float)
        angles = np.atleast_1d(np.asarray(angles, dtype=float))
        rdx = np.cos(angles)[:, None]  # (R, 1)
        rdy = np.sin(angles)[:, None]
        sx = self._ax[None, :] - origin[0]  # (1, S)
        sy = self._ay[None, :] - origin[1]
        # Solve origin + t*rd == a + u*sd for t >= 0, 0 <= u <= 1.
        denom = rdx * self._dy[None, :] - rdy * self._dx[None, :]
        safe = np.abs(denom) > _EPS
        denom_safe = np.where(safe, denom, 1.0)
        t = (sx * self._dy[None, :] - sy * self._dx[None, :]) / denom_safe
        u = (sx * rdy - sy * rdx) / denom_safe
        valid = safe & (t >= 0.0) & (u >= 0.0) & (u <= 1.0)
        t = np.where(valid, t, max_range)
        return np.minimum(t.min(axis=1), max_range)

    def cast_ray(
        self, origin: np.ndarray, angle: float, max_range: float = 1e9
    ) -> float:
        """Scalar convenience wrapper over :meth:`cast_rays`."""
        return float(self.cast_rays(origin, np.array([angle]), max_range)[0])


class Polyline:
    """A 2D polyline with arclength parameterization.

    The worlds use a polyline centerline to define corridor geometry and to
    answer "how far along the course is the drone, and how far off-center?"
    — the coordinates the paper's figures plot.
    """

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2 or points.shape[0] < 2:
            raise ValueError("Polyline requires an (N, 2) array with N >= 2")
        self.points = points
        deltas = np.diff(points, axis=0)
        self._seg_lengths = np.sqrt((deltas**2).sum(axis=1))
        if np.any(self._seg_lengths < _EPS):
            raise ValueError("Polyline contains a degenerate segment")
        self._cum = np.concatenate([[0.0], np.cumsum(self._seg_lengths)])
        self._dirs = deltas / self._seg_lengths[:, None]

    @property
    def length(self) -> float:
        return float(self._cum[-1])

    def point_at_arclength(self, s: float) -> np.ndarray:
        """World point at arclength ``s`` (clamped to the polyline)."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self._cum, s, side="right") - 1)
        i = min(i, len(self._seg_lengths) - 1)
        return self.points[i] + (s - self._cum[i]) * self._dirs[i]

    def tangent_at_arclength(self, s: float) -> np.ndarray:
        """Unit tangent at arclength ``s``."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self._cum, s, side="right") - 1)
        i = min(i, len(self._seg_lengths) - 1)
        return self._dirs[i].copy()

    def normal_at_arclength(self, s: float) -> np.ndarray:
        """Unit left-normal at arclength ``s``."""
        t = self.tangent_at_arclength(s)
        return np.array([-t[1], t[0]])

    def project(self, point: np.ndarray) -> tuple[float, float]:
        """Project a point onto the polyline.

        Returns ``(s, d)``: arclength of the closest centerline point and
        the signed lateral offset (positive to the left of travel).
        """
        p = np.asarray(point, dtype=float)
        rel = p[None, :] - self.points[:-1]
        t = (rel * self._dirs).sum(axis=1)
        t = np.clip(t, 0.0, self._seg_lengths)
        closest = self.points[:-1] + t[:, None] * self._dirs
        d2 = ((p[None, :] - closest) ** 2).sum(axis=1)
        i = int(np.argmin(d2))
        s = float(self._cum[i] + t[i])
        normal = np.array([-self._dirs[i][1], self._dirs[i][0]])
        d = float((p - closest[i]) @ normal)
        return s, d

    def offset(self, distance: float) -> "Polyline":
        """A polyline offset laterally by ``distance`` (positive = left).

        Offsets each vertex along the averaged normal of its adjacent
        segments — adequate for the gentle curvatures of corridor worlds.
        """
        normals = np.empty_like(self.points)
        seg_normals = np.column_stack([-self._dirs[:, 1], self._dirs[:, 0]])
        normals[0] = seg_normals[0]
        normals[-1] = seg_normals[-1]
        if len(self.points) > 2:
            avg = seg_normals[:-1] + seg_normals[1:]
            norms = np.linalg.norm(avg, axis=1, keepdims=True)
            norms = np.where(norms < _EPS, 1.0, norms)
            normals[1:-1] = avg / norms
        return Polyline(self.points + distance * normals)

    def to_segments(self) -> list[Segment2]:
        return [
            Segment2(
                float(self.points[i][0]),
                float(self.points[i][1]),
                float(self.points[i + 1][0]),
                float(self.points[i + 1][1]),
            )
            for i in range(len(self.points) - 1)
        ]
