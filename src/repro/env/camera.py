"""Software-rasterized first-person (FPV) camera.

The evaluated drone "is equipped with a first-person view (FPV) camera with
a field-of-view (FOV) of 90 degrees" (Section 4.1).  Unreal Engine's
renderer is replaced by a small column-raycast rasterizer that draws the
corridor walls with perspective and distance shading, plus a floor "trail"
stripe along the course centerline.  The resulting images carry the same
task-relevant signal the paper's TrailNet-style classifiers consume: the
vanishing geometry shifts with heading error and wall asymmetry shifts with
lateral offset, so left/center/right classes are learnable from pixels (the
training example and tests train a real CNN on them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.geometry import Pose2
from repro.env.worlds import World


@dataclass
class CameraParams:
    """Rendering parameters for the FPV camera."""

    width: int = 48
    height: int = 32
    fov_degrees: float = 90.0
    camera_height: float = 1.5  # m above the floor
    wall_height: float = 3.0  # m, visual wall height
    trail_half_width: float = 0.35  # m, width of the floor trail stripe
    max_depth: float = 60.0
    texture_noise: float = 0.02

    def __post_init__(self) -> None:
        if self.width < 4 or self.height < 4:
            raise ValueError("camera resolution must be at least 4x4")
        if not (10.0 <= self.fov_degrees <= 170.0):
            raise ValueError("fov_degrees must be in [10, 170]")


class FpvCamera:
    """Column-raycast corridor renderer.

    ``render`` produces a float32 grayscale image in [0, 1] with shape
    ``(height, width)``, row 0 at the top.
    """

    def __init__(self, params: CameraParams | None = None, seed: int = 2):
        self.params = params or CameraParams()
        self._rng = np.random.default_rng(seed)
        p = self.params
        half_fov = math.radians(p.fov_degrees) / 2.0
        # Pinhole model: evenly spaced image-plane columns, not angles.
        self._focal = (p.width / 2.0) / math.tan(half_fov)
        cols = np.arange(p.width) - (p.width - 1) / 2.0
        # Camera x points forward; positive column index = right of image =
        # clockwise (negative) angle.
        self._col_angles = -np.arctan2(cols, self._focal)
        self._rows = np.arange(p.height)
        # Per-frame constants and the reusable frame buffer: ``render`` runs
        # once per camera request, and these allocations dominated its
        # non-raycast cost.  The buffer never escapes — the returned image
        # is the fresh array ``np.clip`` produces.
        self._rows_f = self._rows[:, None].astype(float)  # (H, 1)
        self._cos_col = np.cos(self._col_angles)
        self._drop = np.maximum(self._rows_f - (p.height - 1) / 2.0, 0.75)
        self._ground_dist = p.camera_height * self._focal / self._drop  # (H, 1)
        self._image = np.empty((p.height, p.width), dtype=np.float32)

    def reset(self, seed: int | None = None) -> None:
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def render(self, world: World, pose: Pose2) -> np.ndarray:
        """Render the FPV view of ``world`` from ``pose``."""
        p = self.params
        depths = world.panorama(pose, self._col_angles, max_range=p.max_depth)
        depths = np.maximum(depths, 0.2)
        # Correct fisheye: perpendicular distance for projection height.
        perp = depths * self._cos_col
        perp = np.maximum(perp, 0.2)

        horizon = (p.height - 1) / 2.0
        wall_top = horizon - (p.wall_height - p.camera_height) * self._focal / perp
        wall_bottom = horizon + p.camera_height * self._focal / perp

        image = self._image
        image.fill(0.0)

        rows = self._rows_f  # (H, 1)
        in_wall = (rows >= wall_top[None, :]) & (rows < wall_bottom[None, :])
        shade = 0.75 / (1.0 + 0.10 * depths)  # distance-attenuated wall shade
        image += in_wall * shade[None, :]

        # Sky above the walls.
        image += (rows < wall_top[None, :]) * 0.08

        # Floor below the walls, with a bright trail stripe on the
        # centerline.  For each floor pixel, intersect its view ray with
        # the ground plane and test proximity to the course centerline.
        below = rows > wall_bottom[None, :]
        if np.any(below):
            # World-frame point hit by (row, col) ray on the floor.
            gx = (
                pose.x
                + self._ground_dist * np.cos(pose.yaw + self._col_angles)[None, :]
            )
            gy = (
                pose.y
                + self._ground_dist * np.sin(pose.yaw + self._col_angles)[None, :]
            )
            floor_pts = np.stack([gx, gy], axis=-1)  # (H, W, 2)
            offsets = self._centerline_offsets(world, floor_pts[below])
            floor_shade = np.full(offsets.shape, 0.22, dtype=np.float32)
            floor_shade[np.abs(offsets) <= p.trail_half_width] = 0.95
            image[below] = floor_shade

        if p.texture_noise > 0:
            image += self._rng.normal(0.0, p.texture_noise, image.shape).astype(
                np.float32
            )
        return np.clip(image, 0.0, 1.0)

    # ------------------------------------------------------------------
    @staticmethod
    def _centerline_offsets(world: World, points: np.ndarray) -> np.ndarray:
        """Vectorized lateral offset of each point from the centerline.

        Uses the world's precomputed per-segment arrays
        (:class:`~repro.env.worlds.CenterlineArrays`) — this runs for every
        rendered frame, and re-deriving segment geometry here used to be
        ~a third of a mission's wall time.
        """
        arrays = world.centerline_arrays
        starts, lens, units = arrays.starts, arrays.lens, arrays.units
        # (P, S) projections onto every centerline segment.
        rel = points[:, None, :] - starts[None, :, :]
        t = (rel * units[None, :, :]).sum(axis=2)
        t = np.clip(t, 0.0, lens[None, :])
        closest = starts[None, :, :] + t[..., None] * units[None, :, :]
        diff = points[:, None, :] - closest
        d2 = (diff**2).sum(axis=2)
        idx = np.argmin(d2, axis=1)
        rows = np.arange(points.shape[0])
        normal = np.column_stack([-units[idx, 1], units[idx, 0]])
        return (diff[rows, idx] * normal).sum(axis=1)


def encode_image_u8(image: np.ndarray) -> bytes:
    """Quantize a [0, 1] float image to uint8 bytes for packet transport."""
    u8 = np.clip(np.asarray(image) * 255.0, 0.0, 255.0).astype(np.uint8)
    return u8.tobytes()


def decode_image_u8(data: bytes, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`encode_image_u8`."""
    flat = np.frombuffer(data, dtype=np.uint8)
    if flat.size != height * width:
        raise ValueError(
            f"image payload has {flat.size} bytes, expected {height * width}"
        )
    return (flat.reshape(height, width).astype(np.float32)) / 255.0
