"""RPC facade over the environment simulator.

AirSim exposes "a remote-procedure-call (RPC) API for sensor readings and
actuation, as well as simulator commands" (Section 3.1), and the RoSE
synchronizer "communicat[es] with the AirSim server by using its RPC
interface" (Section 3.4.1).  This module reproduces that boundary: the
synchronizer never touches :class:`~repro.env.simulator.EnvSimulator`
directly; it holds an :class:`RpcClient` whose calls are marshalled —
method name plus JSON-serializable arguments — through an
:class:`RpcServer` that dispatches to registered handlers.

Keeping a real marshalling boundary (rather than plain method calls) does
two things: it forces every datum crossing the boundary to be
serializable, exactly as the real system requires, and it gives the
deployment model a hook to account per-call RPC latency.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable


from repro.env.camera import encode_image_u8
from repro.env.flightctl import VelocityTarget
from repro.env.simulator import EnvSimulator
from repro.errors import SimulationError


@dataclass
class RpcStats:
    """Counters the throughput model and tests consume."""

    calls: int = 0
    bytes_out: int = 0
    bytes_in: int = 0


class RpcServer:
    """Dispatches marshalled calls to an :class:`EnvSimulator`.

    Every handler takes and returns JSON-serializable values only; images
    are transported as uint8 byte payloads alongside their shape, exactly
    as they travel over the wire in the real deployment.
    """

    def __init__(self, simulator: EnvSimulator):
        self.simulator = simulator
        self.stats = RpcStats()
        self._handlers: dict[str, Callable[..., Any]] = {
            "ping": lambda: "pong",
            "reset": self._reset,
            "takeoff": self._takeoff,
            "continue_for_frames": self._continue_for_frames,
            "get_camera_image": self._get_camera_image,
            "get_imu": self._get_imu,
            "get_depth": self._get_depth,
            "get_lidar": self._get_lidar,
            "get_state": self._get_state,
            "send_velocity_target": self._send_velocity_target,
            "get_sim_time": lambda: self.simulator.sim_time,
            "get_collision_count": lambda: self.simulator.collision_count,
            "mission_complete": lambda: self.simulator.mission_complete,
            "get_mission_time": lambda: self.simulator.mission_time,
            "get_course_state": self._get_course_state,
            "get_progress": lambda: self.simulator.course_progress,
        }

    @property
    def methods(self) -> list[str]:
        return sorted(self._handlers)

    def call(self, method: str, *args: Any) -> Any:
        """Marshal and dispatch one RPC."""
        try:
            handler = self._handlers[method]
        except KeyError:
            raise SimulationError(f"unknown RPC method {method!r}") from None
        if not args:
            # Fast path for the (most common) argument-less call: the JSON
            # round-trip of ``()`` is always the 2-byte ``[]``.
            self.stats.calls += 1
            self.stats.bytes_out += 2
            result = handler()
        elif (size := RpcServer._simple_args_size(args)) >= 0:
            # All-scalar argument tuples round-trip through JSON as the
            # identity (repr round-trips finite floats exactly), so the
            # dumps/loads pair is skipped and only its byte count kept.
            self.stats.calls += 1
            self.stats.bytes_out += size
            result = handler(*args)
        else:
            # Round-trip the arguments through JSON: anything that cannot
            # be marshalled must fail here, at the boundary, not deep
            # inside.
            try:
                encoded = json.dumps(args)
            except TypeError as exc:
                raise SimulationError(
                    f"RPC arguments for {method!r} are not serializable: {exc}"
                ) from exc
            self.stats.calls += 1
            self.stats.bytes_out += len(encoded)
            result = handler(*json.loads(encoded))
        self.stats.bytes_in += self._payload_size(result)
        return result

    @staticmethod
    def _payload_size(result: Any) -> int:
        # Scalar fast paths, each sized exactly as ``len(json.dumps(x))``
        # would report (bools before ints: bool subclasses int).
        if result is None:
            return 4
        if result is True:
            return 4
        if result is False:
            return 5
        if isinstance(result, (bytes, bytearray)):
            return len(result)
        if isinstance(result, float):
            if math.isfinite(result):
                return len(repr(result))  # json floats use float.__repr__
        elif isinstance(result, int):
            return len(repr(result))
        elif isinstance(result, dict):
            size = RpcServer._simple_dict_size(result)
            if size >= 0:
                return size
            if any(isinstance(v, (bytes, bytearray)) for v in result.values()):
                return 32 + sum(
                    len(v)
                    for v in result.values()
                    if isinstance(v, (bytes, bytearray))
                )
        try:
            return len(json.dumps(result))
        except TypeError:
            return 0

    @staticmethod
    def _simple_args_size(args: tuple) -> int:
        """``len(json.dumps(args))`` for all-scalar argument tuples,
        without rendering the JSON.  Returns -1 when any argument needs
        the real marshalling path (containers, strings, non-finite
        floats); sizes otherwise match ``json.dumps`` exactly.
        """
        size = 2 * len(args)  # brackets + ", " separators
        for v in args:
            if v is True or v is None:
                size += 4
            elif v is False:
                size += 5
            elif isinstance(v, float):
                if not math.isfinite(v):
                    return -1
                size += len(repr(v))
            elif isinstance(v, int) and type(v) is int:
                size += len(repr(v))
            else:
                return -1
        return size

    @staticmethod
    def _simple_dict_size(result: dict) -> int:
        """``len(json.dumps(result))`` for flat scalar dicts, without
        rendering the JSON (these dominate the RPC traffic).  Returns -1
        when any key/value falls outside the fast cases; sizes otherwise
        match ``json.dumps`` exactly — ASCII identifier keys need no
        escaping, and JSON renders floats with ``repr``.
        """
        size = 2 + 2 * (len(result) - 1) if result else 2
        for k, v in result.items():
            if not (isinstance(k, str) and k.isascii() and k.isidentifier()):
                return -1
            if v is True or v is None:
                value_len = 4
            elif v is False:
                value_len = 5
            elif isinstance(v, float):
                if not math.isfinite(v):
                    return -1
                value_len = len(repr(v))
            elif isinstance(v, int) and type(v) is int:
                value_len = len(repr(v))
            else:
                return -1
            size += len(k) + 4 + value_len  # quotes + ": "
        return size

    # -- handlers ------------------------------------------------------
    def _reset(self) -> bool:
        self.simulator.reset()
        return True

    def _takeoff(self) -> bool:
        self.simulator.takeoff()
        return True

    def _continue_for_frames(self, frames: int) -> int:
        self.simulator.continue_for_frames(int(frames))
        return self.simulator.frame

    def _get_camera_image(self) -> dict[str, Any]:
        image = self.simulator.get_camera_image()
        _s, d, heading_error = self.simulator.course_state()
        return {
            "height": image.shape[0],
            "width": image.shape[1],
            "pixels": encode_image_u8(image),
            "timestamp": self.simulator.sim_time,
            # Ground-truth image metadata (see EnvSimulator.course_state).
            "heading_error": heading_error,
            "lateral_offset": d,
            "half_width": self.simulator.world.half_width,
        }

    def _get_imu(self) -> dict[str, float]:
        reading = self.simulator.get_imu()
        return {
            "accel_x": reading.accel_x,
            "accel_y": reading.accel_y,
            "accel_z": reading.accel_z,
            "gyro_z": reading.gyro_z,
            "timestamp": reading.timestamp,
        }

    def _get_depth(self) -> float:
        return self.simulator.get_depth()

    def _get_lidar(self) -> dict[str, Any]:
        scan = self.simulator.get_lidar()
        return {
            "beams": scan.beams,
            "fov_rad": scan.fov_rad,
            "timestamp": scan.timestamp,
            "ranges": scan.ranges.tobytes(),
        }

    def _get_course_state(self) -> dict[str, float]:
        s, d, heading_error = self.simulator.course_state()
        return {"s": s, "d": d, "heading_error": heading_error}

    def _get_state(self) -> dict[str, float]:
        st = self.simulator.get_state()
        return {
            "x": st.x,
            "y": st.y,
            "z": st.z,
            "yaw": st.yaw,
            "u": st.u,
            "v": st.v,
            "r": st.r,
            "speed": st.speed,
        }

    def _send_velocity_target(
        self, v_forward: float, v_lateral: float, yaw_rate: float, altitude: float
    ) -> bool:
        self.simulator.send_velocity_target(
            VelocityTarget(
                v_forward=float(v_forward),
                v_lateral=float(v_lateral),
                yaw_rate=float(yaw_rate),
                altitude=float(altitude),
            )
        )
        return True


class RpcClient:
    """Typed client wrapper the synchronizer holds.

    A client can wrap any server object exposing ``call`` — in tests a
    recording fake takes the server's place.
    """

    def __init__(self, server: RpcServer):
        self._server = server

    def call(self, method: str, *args: Any) -> Any:
        return self._server.call(method, *args)

    # Typed conveniences -------------------------------------------------
    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def reset(self) -> None:
        self.call("reset")

    def takeoff(self) -> None:
        self.call("takeoff")

    def continue_for_frames(self, frames: int) -> int:
        return int(self.call("continue_for_frames", frames))

    def get_camera_image(self) -> dict[str, Any]:
        return self.call("get_camera_image")

    def get_imu(self) -> dict[str, float]:
        return self.call("get_imu")

    def get_depth(self) -> float:
        return float(self.call("get_depth"))

    def get_lidar(self) -> dict[str, Any]:
        return self.call("get_lidar")

    def get_state(self) -> dict[str, float]:
        return self.call("get_state")

    def send_velocity_target(
        self, v_forward: float, v_lateral: float, yaw_rate: float, altitude: float
    ) -> None:
        self.call("send_velocity_target", v_forward, v_lateral, yaw_rate, altitude)

    def get_sim_time(self) -> float:
        return float(self.call("get_sim_time"))

    def get_collision_count(self) -> int:
        return int(self.call("get_collision_count"))

    def mission_complete(self) -> bool:
        return bool(self.call("mission_complete"))

    def get_mission_time(self) -> float | None:
        result = self.call("get_mission_time")
        return None if result is None else float(result)

    def get_course_state(self) -> dict[str, float]:
        return self.call("get_course_state")

    def get_progress(self) -> float:
        return float(self.call("get_progress"))
