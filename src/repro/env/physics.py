"""Quadrotor flight dynamics with frame stepping and collision response.

The model captures what the paper's closed-loop experiments are sensitive
to: a drone cannot change its velocity instantaneously (attitude/actuator
lag plus bounded acceleration), so stale control targets — caused by DNN
latency or coarse co-simulation synchronization — translate into trajectory
error and, past a threshold, wall collisions.  Photorealistic aerodynamics
are not required; bounded-acceleration kinematics with a first-order
actuator lag and drag reproduce the latency-to-trajectory coupling.

Collisions follow the paper's artifact appendix (A.7): a collision does not
end the mission — the drone stops against the wall, loses most of its
speed, and spends a recovery interval re-stabilizing before control
resumes, which is why colliding configurations show much longer mission
times (e.g. Rocket-based SoCs in Figure 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.geometry import Pose2, wrap_angle
from repro.env.worlds import World


@dataclass
class DroneState:
    """Full kinematic state of the simulated quadrotor.

    Velocities ``u`` (forward) and ``v`` (leftward) are expressed in the
    body frame; ``r`` is the yaw rate.  ``z``/``vz`` model altitude.
    """

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    yaw: float = 0.0
    u: float = 0.0
    v: float = 0.0
    vz: float = 0.0
    r: float = 0.0

    @property
    def pose(self) -> Pose2:
        return Pose2(self.x, self.y, self.yaw)

    @property
    def speed(self) -> float:
        return math.hypot(self.u, self.v)

    @property
    def world_velocity(self) -> np.ndarray:
        c, s = math.cos(self.yaw), math.sin(self.yaw)
        return np.array([self.u * c - self.v * s, self.u * s + self.v * c])

    def copy(self) -> "DroneState":
        return DroneState(
            self.x, self.y, self.z, self.yaw, self.u, self.v, self.vz, self.r
        )


@dataclass
class AccelCommand:
    """Body-frame acceleration command produced by the flight controller."""

    a_forward: float = 0.0
    a_lateral: float = 0.0
    a_vertical: float = 0.0
    yaw_accel: float = 0.0


@dataclass
class QuadrotorParams:
    """Physical limits and response constants of the modeled airframe."""

    max_linear_accel: float = 6.0  # m/s^2, bank-angle limited
    max_vertical_accel: float = 4.0  # m/s^2
    max_yaw_accel: float = 12.0  # rad/s^2
    max_speed: float = 15.0  # m/s
    max_yaw_rate: float = 2.5  # rad/s
    actuator_tau: float = 0.12  # s, first-order lag of attitude response
    linear_drag: float = 0.25  # 1/s, velocity-proportional drag
    yaw_drag: float = 1.2  # 1/s
    collision_radius: float = 0.30  # m
    collision_speed_retention: float = 0.15  # tangential speed kept on impact
    recovery_time: float = 1.5  # s of post-collision stabilization


@dataclass
class CollisionEvent:
    """Record of one wall impact."""

    time: float
    x: float
    y: float
    speed: float


class QuadrotorDynamics:
    """Frame-stepped quadrotor dynamics within a :class:`World`.

    The environment simulator owns one instance and advances it one frame
    at a time; the flight controller supplies an :class:`AccelCommand`
    each frame.
    """

    def __init__(
        self,
        world: World,
        params: QuadrotorParams | None = None,
        initial_state: DroneState | None = None,
    ):
        self.world = world
        self.params = params or QuadrotorParams()
        self.state = initial_state.copy() if initial_state else DroneState()
        self.collisions: list[CollisionEvent] = []
        self.time = 0.0
        self._recovery_until = -1.0
        # First-order actuator state (the accelerations actually realized).
        self._applied = AccelCommand()
        # Scratch buffer for the per-frame collision test; the world never
        # retains the array it is probed with.
        self._collision_probe = np.empty(2, dtype=float)

    @property
    def recovering(self) -> bool:
        """True while the drone is stabilizing after a collision."""
        return self.time < self._recovery_until

    @property
    def applied_acceleration(self) -> AccelCommand:
        """The accelerations realized this frame (post actuator lag); the
        IMU model samples these as the specific-force ground truth."""
        return self._applied

    def reset(self, state: DroneState) -> None:
        self.state = state.copy()
        self.collisions = []
        self.time = 0.0
        self._recovery_until = -1.0
        self._applied = AccelCommand()

    # ------------------------------------------------------------------
    def step(self, command: AccelCommand, dt: float) -> None:
        """Advance one frame of duration ``dt`` under ``command``."""
        p = self.params
        st = self.state

        if self.recovering:
            # During recovery the autopilot brakes to hover; external
            # commands are ignored, matching the "re-stabilize after a
            # collision" behaviour the artifact appendix describes.
            command = AccelCommand(
                a_forward=-st.u / max(p.recovery_time * 0.5, dt),
                a_lateral=-st.v / max(p.recovery_time * 0.5, dt),
                a_vertical=-st.vz / max(p.recovery_time * 0.5, dt),
                yaw_accel=-st.r / max(p.recovery_time * 0.5, dt),
            )

        # Scalar clamps: builtin min/max round identically to np.clip on
        # floats but allocate nothing.
        clipped = AccelCommand(
            a_forward=min(max(command.a_forward, -p.max_linear_accel), p.max_linear_accel),
            a_lateral=min(max(command.a_lateral, -p.max_linear_accel), p.max_linear_accel),
            a_vertical=min(max(command.a_vertical, -p.max_vertical_accel), p.max_vertical_accel),
            yaw_accel=min(max(command.yaw_accel, -p.max_yaw_accel), p.max_yaw_accel),
        )

        # First-order actuator lag: attitude (hence lateral force) cannot
        # change instantaneously.
        alpha = dt / (p.actuator_tau + dt)
        ap = self._applied
        ap.a_forward += alpha * (clipped.a_forward - ap.a_forward)
        ap.a_lateral += alpha * (clipped.a_lateral - ap.a_lateral)
        ap.a_vertical += alpha * (clipped.a_vertical - ap.a_vertical)
        ap.yaw_accel += alpha * (clipped.yaw_accel - ap.yaw_accel)

        # Integrate body-frame velocities with drag.
        st.u += (ap.a_forward - p.linear_drag * st.u) * dt
        st.v += (ap.a_lateral - p.linear_drag * st.v) * dt
        st.vz += (ap.a_vertical - p.linear_drag * st.vz) * dt
        st.r += (ap.yaw_accel - p.yaw_drag * st.r) * dt

        speed = st.speed
        if speed > p.max_speed:
            scale = p.max_speed / speed
            st.u *= scale
            st.v *= scale
        st.r = min(max(st.r, -p.max_yaw_rate), p.max_yaw_rate)

        # Integrate pose.  The world-frame velocity rotation is inlined
        # (identical arithmetic to ``DroneState.world_velocity``) so the
        # per-frame hot path allocates no intermediate array.
        st.yaw = wrap_angle(st.yaw + st.r * dt)
        c, s = math.cos(st.yaw), math.sin(st.yaw)
        new_x = st.x + (st.u * c - st.v * s) * dt
        new_y = st.y + (st.u * s + st.v * c) * dt
        st.z += st.vz * dt

        pos = self._collision_probe
        pos[0] = new_x
        pos[1] = new_y
        if self.world.in_collision(pos, p.collision_radius):
            if not self.recovering:
                self._handle_collision(new_x, new_y)
            # While recovering against the wall, hold position.
        else:
            st.x, st.y = new_x, new_y

        self.time += dt

    # ------------------------------------------------------------------
    def _handle_collision(self, new_x: float, new_y: float) -> None:
        """Stop at the wall, shed speed, and enter recovery."""
        p = self.params
        st = self.state
        self.collisions.append(
            CollisionEvent(time=self.time, x=new_x, y=new_y, speed=st.speed)
        )
        # Remain at the last non-colliding position; keep a fraction of
        # tangential speed, kill the rest (impact), and schedule recovery.
        st.u *= p.collision_speed_retention
        st.v = 0.0
        st.r = 0.0
        self._applied = AccelCommand()
        self._recovery_until = self.time + p.recovery_time
