"""Shared centerline constructors for corridor worlds.

The two legacy procedural families (``tunnel_world`` / ``s_shape_world``
in :mod:`repro.env.worlds`) and scenario-compiled worlds
(:mod:`repro.scenario.generate`) build their corridors from the same
small set of centerline shapes.  This module is the single source for
those shapes so the scenario compiler never duplicates the legacy
expressions — bit-identity between a legacy world and its scenario
equivalent reduces to "both call the same function".

Every constructor returns an ``(N, 2)`` float array of centerline
vertices suitable for :class:`repro.env.geometry.Polyline`; the caller
owns width/goal metadata.
"""

from __future__ import annotations

import math

import numpy as np


def straight_centerline(length: float) -> np.ndarray:
    """A straight course along +x: the ``tunnel`` family's centerline.

    One vertex per meter (minimum two), exactly the expression
    ``tunnel_world`` has always used, so existing golden traces are
    unaffected by the refactor.
    """
    n = max(2, int(length) + 1)
    return np.column_stack([np.linspace(0.0, length, n), np.zeros(n)])


def sine_centerline(
    length: float,
    amplitude: float,
    resolution: int,
    periods: float = 1.0,
) -> np.ndarray:
    """A sinusoidal course: the ``s-shape`` family's centerline.

    ``periods = 1.0`` reproduces the legacy s-shape bit-for-bit (the
    scalar prefactor ``2*pi*1.0`` is exactly ``2*pi``); other period
    counts generalize the family for scenario-compiled worlds.
    """
    x = np.linspace(0.0, length, resolution)
    y = amplitude * np.sin(2.0 * math.pi * periods * x / length)
    return np.column_stack([x, y])


def zigzag_centerline(length: float, amplitude: float, segments: int) -> np.ndarray:
    """A triangle-wave course: straight legs with alternating corners.

    Interior vertices alternate between ``+amplitude`` and
    ``-amplitude``; both endpoints sit on the course axis, so spawn and
    goal behave like the straight family.  Only scenario-compiled
    worlds use this shape — there is no legacy equivalent.
    """
    n = segments + 1
    x = np.linspace(0.0, length, n)
    y = np.zeros(n)
    for i in range(1, n - 1):
        y[i] = amplitude if i % 2 == 1 else -amplitude
    return np.column_stack([x, y])
