"""Inertial and depth sensor models.

AirSim "uses its own ... inertial sensor models" (Section 3.1); we model
the two non-camera sensors the paper's evaluation uses:

* an IMU (Section 4.1: "the onboard flight controller has access to an
  IMU") with Gaussian noise and a slowly-drifting bias, and
* a forward-facing depth sensor (Section 5.3: "We determine the deadline by
  measuring forward-facing depth-sensor readings from the UAV").

Sensors use sample-and-hold semantics: readings are taken at frame
boundaries from the current dynamics state, matching the frame-quantized
stepping of the environment simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.physics import QuadrotorDynamics
from repro.env.worlds import World

GRAVITY = 9.81

#: Largest accepted noise multiplier — far above anything a mission
#: survives, but finite so a fuzzer mutation cannot wander off to inf.
MAX_NOISE_SCALE = 16.0


@dataclass(frozen=True)
class SensorNoiseProfile:
    """Per-sensor noise multipliers for a scenario (``rose-scenario/1``).

    Each scale multiplies the corresponding sensor's default noise
    parameters: the IMU's noise/bias-walk sigmas, the depth sensor's
    additive and range-proportional sigmas, the lidar's beam sigma, and
    the camera's texture-noise amplitude.  ``1.0`` everywhere is the
    identity profile — the environment applies no profile at all in that
    case, so legacy configurations build bit-identical sensors.
    """

    imu_scale: float = 1.0
    depth_scale: float = 1.0
    lidar_scale: float = 1.0
    camera_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("imu_scale", "depth_scale", "lidar_scale", "camera_scale"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if not (0.0 <= float(value) <= MAX_NOISE_SCALE):
                raise ValueError(
                    f"{name} must lie in [0, {MAX_NOISE_SCALE}], got {value!r}"
                )

    @property
    def is_identity(self) -> bool:
        return (
            self.imu_scale == 1.0
            and self.depth_scale == 1.0
            and self.lidar_scale == 1.0
            and self.camera_scale == 1.0
        )

    def to_dict(self) -> dict[str, float]:
        return {
            "imu_scale": float(self.imu_scale),
            "depth_scale": float(self.depth_scale),
            "lidar_scale": float(self.lidar_scale),
            "camera_scale": float(self.camera_scale),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SensorNoiseProfile":
        if not isinstance(data, dict):
            raise ValueError(f"noise profile must be an object, got {data!r}")
        known = {"imu_scale", "depth_scale", "lidar_scale", "camera_scale"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown noise profile field(s): {', '.join(unknown)}")
        return cls(**{key: float(value) for key, value in data.items()})


@dataclass(frozen=True)
class ImuReading:
    """One IMU sample: body-frame specific force and angular rate."""

    accel_x: float
    accel_y: float
    accel_z: float
    gyro_z: float
    timestamp: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.accel_x, self.accel_y, self.accel_z, self.gyro_z, self.timestamp)


@dataclass
class ImuParams:
    accel_noise_std: float = 0.08  # m/s^2
    gyro_noise_std: float = 0.004  # rad/s
    accel_bias_walk: float = 0.002  # m/s^2 per sqrt(s)
    gyro_bias_walk: float = 0.0002  # rad/s per sqrt(s)


class Imu:
    """IMU with additive Gaussian noise and random-walk bias."""

    def __init__(self, params: ImuParams | None = None, seed: int = 0):
        self.params = params or ImuParams()
        self._rng = np.random.default_rng(seed)
        self._accel_bias = np.zeros(3)
        self._gyro_bias = 0.0

    def reset(self, seed: int | None = None) -> None:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._accel_bias = np.zeros(3)
        self._gyro_bias = 0.0

    def read(self, dynamics: QuadrotorDynamics, dt: float) -> ImuReading:
        """Sample the IMU given the current dynamics state."""
        p = self.params
        sqrt_dt = np.sqrt(max(dt, 1e-6))
        self._accel_bias += self._rng.normal(0.0, p.accel_bias_walk * sqrt_dt, 3)
        self._gyro_bias += float(self._rng.normal(0.0, p.gyro_bias_walk * sqrt_dt))

        applied = dynamics.applied_acceleration
        true_accel = np.array(
            [applied.a_forward, applied.a_lateral, applied.a_vertical + GRAVITY]
        )
        noisy = (
            true_accel
            + self._accel_bias
            + self._rng.normal(0.0, p.accel_noise_std, 3)
        )
        gyro = (
            dynamics.state.r
            + self._gyro_bias
            + float(self._rng.normal(0.0, p.gyro_noise_std))
        )
        return ImuReading(
            accel_x=float(noisy[0]),
            accel_y=float(noisy[1]),
            accel_z=float(noisy[2]),
            gyro_z=gyro,
            timestamp=dynamics.time,
        )


@dataclass
class DepthParams:
    max_range: float = 60.0  # m
    noise_std: float = 0.05  # m, range-proportional below
    noise_range_fraction: float = 0.01


@dataclass
class LidarParams:
    beams: int = 64
    fov_rad: float = 4.7124  # 270 degrees, a typical planar scanner
    max_range: float = 30.0
    noise_std: float = 0.03

    def __post_init__(self) -> None:
        if self.beams < 2:
            raise ValueError("lidar needs at least 2 beams")
        if not (0 < self.fov_rad <= 2 * np.pi):
            raise ValueError("fov_rad must be in (0, 2*pi]")


@dataclass(frozen=True)
class LidarScan:
    """One planar scan: evenly spaced beams across the field of view.

    Beam 0 points at ``-fov/2`` relative to the vehicle heading, the last
    beam at ``+fov/2``.
    """

    ranges: np.ndarray  # (beams,) float32, meters
    fov_rad: float
    timestamp: float

    @property
    def beams(self) -> int:
        return int(self.ranges.shape[0])

    def beam_angles(self) -> np.ndarray:
        """Body-frame angle of each beam."""
        return np.linspace(-self.fov_rad / 2.0, self.fov_rad / 2.0, self.beams)


class Lidar:
    """Planar multi-beam range scanner (ray casts against the walls)."""

    def __init__(self, params: LidarParams | None = None, seed: int = 3):
        self.params = params or LidarParams()
        self._rng = np.random.default_rng(seed)

    def reset(self, seed: int | None = None) -> None:
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    def scan(self, world: World, dynamics: QuadrotorDynamics) -> LidarScan:
        p = self.params
        angles = np.linspace(-p.fov_rad / 2.0, p.fov_rad / 2.0, p.beams)
        ranges = world.panorama(
            dynamics.state.pose, angles, max_range=p.max_range
        )
        noisy = ranges + self._rng.normal(0.0, p.noise_std, p.beams)
        return LidarScan(
            ranges=np.clip(noisy, 0.0, p.max_range).astype(np.float32),
            fov_rad=p.fov_rad,
            timestamp=dynamics.time,
        )


class DepthSensor:
    """Forward-facing single-beam depth sensor (ray cast to nearest wall)."""

    def __init__(self, params: DepthParams | None = None, seed: int = 1):
        self.params = params or DepthParams()
        self._rng = np.random.default_rng(seed)

    def reset(self, seed: int | None = None) -> None:
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    def read(self, world: World, dynamics: QuadrotorDynamics) -> float:
        p = self.params
        true_depth = world.depth_along(
            dynamics.state.pose, max_range=p.max_range
        )
        noise_std = p.noise_std + p.noise_range_fraction * true_depth
        reading = true_depth + float(self._rng.normal(0.0, noise_std))
        return float(np.clip(reading, 0.0, p.max_range))
