"""The environment simulator: frame-quantized stepping + RPC-style API.

This is the AirSim stand-in.  Like AirSim (Section 3.4.1), the minimum time
step is one *frame* — a physics update — whose simulated duration is a
runtime parameter (typical rates 60-120 Hz).  The simulator only advances
when granted frames (``continue_for_frames``), which is exactly the
discrete time-stepping contract the RoSE synchronizer relies on; it never
free-runs.

The public methods mirror the subset of AirSim's RPC API the paper uses:
sensor reads (camera / IMU / depth / kinematic state), actuation
(``send_velocity_target``), and simulator commands (``reset``,
``takeoff``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.env.camera import CameraParams, FpvCamera
from repro.env.flightctl import SimpleFlightController, SimpleFlightGains, VelocityTarget
from repro.env.physics import DroneState, QuadrotorDynamics, QuadrotorParams
from repro.env.sensors import (
    DepthParams,
    DepthSensor,
    Imu,
    ImuParams,
    Lidar,
    LidarParams,
    SensorNoiseProfile,
)
from repro.env.worlds import World, cached_world
from repro.errors import SimulationError


@dataclass
class EnvConfig:
    """Configuration of one environment simulation."""

    world: str = "tunnel"
    vehicle: str = "quadrotor"  # "quadrotor" or "car" (artifact A.8.3)
    frame_rate: float = 60.0  # physics frames per simulated second
    initial_angle_deg: float = 0.0
    initial_lateral_offset: float = 0.0
    cruise_altitude: float = 1.5
    seed: int = 0
    camera: CameraParams = field(default_factory=CameraParams)
    quadrotor: QuadrotorParams = field(default_factory=QuadrotorParams)
    gains: SimpleFlightGains = field(default_factory=SimpleFlightGains)
    #: Scenario sensor-noise multipliers.  ``None`` (the default) builds
    #: every sensor with its stock parameters — the pre-scenario code
    #: path, bit-identical to the seed.
    noise: SensorNoiseProfile | None = None

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise SimulationError("frame_rate must be positive")
        if self.vehicle not in ("quadrotor", "car"):
            raise SimulationError(
                f"vehicle must be 'quadrotor' or 'car', got {self.vehicle!r}"
            )

    @property
    def frame_dt(self) -> float:
        return 1.0 / self.frame_rate


@dataclass
class TrajectorySample:
    """One logged point of the flight trajectory."""

    time: float
    x: float
    y: float
    z: float
    yaw: float
    speed: float
    s: float  # course arclength
    d: float  # signed lateral offset


class EnvSimulator:
    """Frame-stepped UAV environment simulation.

    Construction spawns the drone on the ground at the configured initial
    pose.  Call :meth:`takeoff` to arm the flight controller, then advance
    time with :meth:`continue_for_frames`.
    """

    def __init__(self, config: EnvConfig | None = None, world: World | None = None):
        self.config = config or EnvConfig()
        self.world = world if world is not None else cached_world(self.config.world)
        noise = self.config.noise
        if noise is None:
            camera_params = self.config.camera
            imu_params = None
            depth_params = None
            lidar_params = None
        else:
            camera_params = replace(
                self.config.camera,
                texture_noise=self.config.camera.texture_noise * noise.camera_scale,
            )
            base_imu, base_depth, base_lidar = ImuParams(), DepthParams(), LidarParams()
            imu_params = ImuParams(
                accel_noise_std=base_imu.accel_noise_std * noise.imu_scale,
                gyro_noise_std=base_imu.gyro_noise_std * noise.imu_scale,
                accel_bias_walk=base_imu.accel_bias_walk * noise.imu_scale,
                gyro_bias_walk=base_imu.gyro_bias_walk * noise.imu_scale,
            )
            depth_params = replace(
                base_depth,
                noise_std=base_depth.noise_std * noise.depth_scale,
                noise_range_fraction=base_depth.noise_range_fraction * noise.depth_scale,
            )
            lidar_params = replace(
                base_lidar, noise_std=base_lidar.noise_std * noise.lidar_scale
            )
        self.camera = FpvCamera(camera_params, seed=self.config.seed + 2)
        self.imu = Imu(imu_params, seed=self.config.seed)
        self.depth_sensor = DepthSensor(depth_params, seed=self.config.seed + 1)
        self.lidar = Lidar(lidar_params, seed=self.config.seed + 3)
        spawn = self.world.spawn_pose(
            initial_angle=np.deg2rad(self.config.initial_angle_deg),
            lateral_offset=self.config.initial_lateral_offset,
            forward_offset=self._spawn_forward_offset(),
        )
        initial = DroneState(x=spawn.x, y=spawn.y, z=0.0, yaw=spawn.yaw)
        if self.config.vehicle == "car":
            from repro.env.car import CarController, CarDynamics

            self.controller = CarController()
            self.dynamics = CarDynamics(self.world, initial_state=initial)
        else:
            self.controller = SimpleFlightController(self.config.gains)
            self.dynamics = QuadrotorDynamics(
                self.world, params=self.config.quadrotor, initial_state=initial
            )
        self.frame = 0
        self.trajectory: list[TrajectorySample] = []
        self._goal_time: float | None = None
        self._record_sample()

    # ------------------------------------------------------------------
    # Simulator commands
    # ------------------------------------------------------------------
    def _spawn_forward_offset(self) -> float:
        """Clearance from the start cap, sized to the vehicle."""
        return 2.5 if self.config.vehicle == "car" else 0.5

    def reset(self) -> None:
        """Respawn the drone at the initial pose with time rewound."""
        spawn = self.world.spawn_pose(
            initial_angle=np.deg2rad(self.config.initial_angle_deg),
            lateral_offset=self.config.initial_lateral_offset,
            forward_offset=self._spawn_forward_offset(),
        )
        self.dynamics.reset(DroneState(x=spawn.x, y=spawn.y, z=0.0, yaw=spawn.yaw))
        self.controller.reset()
        self.imu.reset(seed=self.config.seed)
        self.depth_sensor.reset(seed=self.config.seed + 1)
        self.camera.reset(seed=self.config.seed + 2)
        self.lidar.reset(seed=self.config.seed + 3)
        self.frame = 0
        self.trajectory = []
        self._goal_time = None
        self._record_sample()

    def takeoff(self) -> None:
        """Arm the flight controller with an altitude-hold target."""
        self.controller.arm(altitude=self.config.cruise_altitude)

    def continue_for_frames(self, frames: int) -> None:
        """Advance the simulation by ``frames`` physics frames.

        This is the discrete-stepping entry point the synchronizer drives
        once per synchronization period.
        """
        if frames < 0:
            raise SimulationError("cannot step a negative number of frames")
        dt = self.config.frame_dt
        is_car = self.config.vehicle == "car"
        for _ in range(frames):
            if is_car:
                command = self.controller.update(self.dynamics, dt)
            else:
                command = self.controller.update(self.dynamics.state, dt)
            self.dynamics.step(command, dt)
            self.frame += 1
            self._record_sample()
            if self._goal_time is None and self.world.reached_goal(
                self.position
            ):
                self._goal_time = self.sim_time

    # ------------------------------------------------------------------
    # Sensor / state API (the AirSim RPC surface)
    # ------------------------------------------------------------------
    def get_camera_image(self) -> np.ndarray:
        return self.camera.render(self.world, self.dynamics.state.pose)

    def get_imu(self):
        return self.imu.read(self.dynamics, self.config.frame_dt)

    def get_depth(self) -> float:
        return self.depth_sensor.read(self.world, self.dynamics)

    def get_lidar(self):
        return self.lidar.scan(self.world, self.dynamics)

    def get_state(self) -> DroneState:
        return self.dynamics.state.copy()

    def send_velocity_target(self, target: VelocityTarget) -> None:
        self.controller.set_target(target)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sim_time(self) -> float:
        return self.frame * self.config.frame_dt

    @property
    def position(self) -> np.ndarray:
        return np.array([self.dynamics.state.x, self.dynamics.state.y])

    @property
    def collision_count(self) -> int:
        return len(self.dynamics.collisions)

    @property
    def mission_complete(self) -> bool:
        return self._goal_time is not None

    @property
    def mission_time(self) -> float | None:
        """Sim time at which the goal was first reached, if it was."""
        return self._goal_time

    def course_state(self) -> tuple[float, float, float]:
        """``(s, d, heading_error)`` of the current pose.

        Exposed alongside camera frames as image metadata (AirSim likewise
        exposes ground-truth kinematics); the calibrated behavioural
        classifier consumes it in place of pixels.
        """
        st = self.dynamics.state
        s, d = self.world.course_coordinates(np.array([st.x, st.y]))
        return s, d, self.world.heading_error(st.pose)

    @property
    def course_progress(self) -> float:
        """Fraction of the course completed, in [0, 1]."""
        s, _ = self.world.course_coordinates(self.position)
        return min(1.0, s / self.world.goal_arclength)

    def _record_sample(self) -> None:
        st = self.dynamics.state
        s, d = self.world.course_coordinates(np.array([st.x, st.y]))
        self.trajectory.append(
            TrajectorySample(
                time=self.sim_time,
                x=st.x,
                y=st.y,
                z=st.z,
                yaw=st.yaw,
                speed=st.speed,
                s=s,
                d=d,
            )
        )
