"""SimpleFlight-style flight controller (cascaded PID hierarchy).

The paper models the flight controller with AirSim's software-in-the-loop
SimpleFlight controller: "a hierarchy of PID controllers that manage the
position, velocity, and angle of attack targets", which "takes in angular
and velocity control targets from the companion computer, and uses the
control hierarchy to track the most recent target received" (Section 4.2.2).

We reproduce that structure: the companion computer sends
:class:`VelocityTarget` commands (body-frame linear velocity plus yaw
rate); the controller keeps the most recent one and produces per-frame
body-frame acceleration commands through velocity PID loops plus an
altitude-hold loop.  Hard real-time low-level control (motor mixing, ESC
PWM) sits below the acceleration abstraction, exactly as it sits below the
velocity abstraction in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.env.physics import AccelCommand, DroneState


@dataclass(frozen=True)
class VelocityTarget:
    """Companion-computer command: body-frame velocity + yaw-rate targets.

    This matches Section 4.1: "The companion computer sends commands to the
    flight controller containing angular and linear velocity targets."
    """

    v_forward: float = 0.0
    v_lateral: float = 0.0
    yaw_rate: float = 0.0
    altitude: float = 1.5  # altitude-hold setpoint, m

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.v_forward, self.v_lateral, self.yaw_rate, self.altitude)


@dataclass
class PidGains:
    kp: float
    ki: float = 0.0
    kd: float = 0.0
    integral_limit: float = 2.0
    output_limit: float = float("inf")


class Pid:
    """A scalar PID loop with integral clamping and output limiting."""

    def __init__(self, gains: PidGains):
        self.gains = gains
        self._integral = 0.0
        self._last_error: float | None = None

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None

    def update(self, error: float, dt: float) -> float:
        g = self.gains
        # Builtin min/max matches np.clip bit-for-bit on scalars and keeps
        # the per-frame control path allocation-free.
        self._integral = min(
            max(self._integral + error * dt, -g.integral_limit), g.integral_limit
        )
        derivative = 0.0
        if self._last_error is not None and dt > 0:
            derivative = (error - self._last_error) / dt
        self._last_error = error
        out = g.kp * error + g.ki * self._integral + g.kd * derivative
        return min(max(out, -g.output_limit), g.output_limit)


@dataclass
class SimpleFlightGains:
    """Gain set for the full cascade; defaults tuned for the corridor
    worlds at the paper's flight speeds (3-12 m/s)."""

    forward: PidGains = field(default_factory=lambda: PidGains(kp=2.0, ki=0.4))
    lateral: PidGains = field(default_factory=lambda: PidGains(kp=2.4, ki=0.4))
    vertical: PidGains = field(default_factory=lambda: PidGains(kp=1.8, ki=0.2))
    yaw_rate: PidGains = field(default_factory=lambda: PidGains(kp=8.0))


class SimpleFlightController:
    """Tracks the most recent :class:`VelocityTarget` with PID loops.

    The controller is stateful across frames (PID integrals) and is reset
    together with the vehicle.  ``set_target`` may be called at any frame
    boundary — typically whenever the companion computer's latest TARGET
    command arrives through the co-simulation bridge.
    """

    def __init__(self, gains: SimpleFlightGains | None = None):
        self.gains = gains or SimpleFlightGains()
        self._fwd = Pid(self.gains.forward)
        self._lat = Pid(self.gains.lateral)
        self._vert = Pid(self.gains.vertical)
        self._yaw = Pid(self.gains.yaw_rate)
        self.target = VelocityTarget(0.0, 0.0, 0.0, 0.0)
        self.armed = False
        self.targets_received = 0

    def reset(self) -> None:
        for pid in (self._fwd, self._lat, self._vert, self._yaw):
            pid.reset()
        self.target = VelocityTarget(0.0, 0.0, 0.0, 0.0)
        self.armed = False
        self.targets_received = 0

    def arm(self, altitude: float = 1.5) -> None:
        """Arm and begin holding ``altitude`` (the takeoff behaviour)."""
        self.armed = True
        self.target = VelocityTarget(0.0, 0.0, 0.0, altitude)

    def set_target(self, target: VelocityTarget) -> None:
        """Replace the tracked target (most-recent-wins semantics)."""
        self.target = target
        self.targets_received += 1

    def update(self, state: DroneState, dt: float) -> AccelCommand:
        """Compute this frame's acceleration command."""
        if not self.armed:
            return AccelCommand()
        t = self.target
        return AccelCommand(
            a_forward=self._fwd.update(t.v_forward - state.u, dt),
            a_lateral=self._lat.update(t.v_lateral - state.v, dt),
            a_vertical=self._vert.update(
                min(max(t.altitude - state.z, -1.0), 1.0) * 1.5 - state.vz, dt
            ),
            yaw_accel=self._yaw.update(t.yaw_rate - state.r, dt),
        )
