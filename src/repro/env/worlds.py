"""Procedural corridor worlds (the paper's ``tunnel`` and ``s-shape`` maps).

Section 4.2.3 of the paper describes two Unreal Engine environments: a
straight tunnel, 50 m long and 3.2 m wide, and an "S"-shaped course of 80 m.
We rebuild them as corridor worlds defined by a centerline polyline plus a
width profile; the walls are lateral offsets of the centerline.  The world
answers the queries the rest of the stack needs:

* collision tests for the physics engine,
* ray casts for the depth sensor and the camera rasterizer,
* (s, d) course coordinates — arclength progress and signed lateral offset —
  for trajectory logging and the behavioural (calibrated) classifier,
* goal tests for mission completion.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.env.courses import sine_centerline, straight_centerline
from repro.env.geometry import Polyline, Pose2, Segment2, SegmentSoup
from repro.errors import SimulationError


@dataclass(frozen=True)
class CenterlineArrays:
    """Precomputed per-segment centerline geometry (read-only).

    One copy per world, computed once at construction: segment start
    points, raw direction vectors, lengths and unit directions.  The
    camera's floor shader, :meth:`World.batch_course_frames` and any other
    per-frame geometry consumer index these instead of re-deriving them
    from the polyline every call.
    """

    starts: np.ndarray  # (S, 2) segment start points
    dirs: np.ndarray  # (S, 2) raw direction vectors (end - start)
    lens: np.ndarray  # (S,) segment lengths
    units: np.ndarray  # (S, 2) unit direction vectors

    @staticmethod
    def from_polyline(centerline: Polyline) -> "CenterlineArrays":
        pts = centerline.points
        dirs = np.diff(pts, axis=0)
        lens = np.sqrt((dirs**2).sum(axis=1))
        units = dirs / lens[:, None]
        arrays = CenterlineArrays(
            starts=pts[:-1].copy(), dirs=dirs, lens=lens, units=units
        )
        for array in (arrays.starts, arrays.dirs, arrays.lens, arrays.units):
            array.setflags(write=False)
        return arrays


@dataclass
class World:
    """A corridor world: centerline, walls, and course metadata.

    Parameters
    ----------
    name:
        Human-readable map name (``"tunnel"`` / ``"s-shape"``).
    centerline:
        The course centerline, starting at the spawn point.
    half_width:
        Lateral distance from the centerline to each wall.
    goal_arclength:
        Arclength at which the mission counts as complete.
    obstacles:
        Extra solid segments inside the corridor (scenario-compiled
        worlds place diamond/box obstacles here).  They join the wall
        soup *after* the walls and end caps, so a world with no
        obstacles builds a segment list identical to the pre-obstacle
        code — every legacy golden trace is unaffected.
    """

    name: str
    centerline: Polyline
    half_width: float
    goal_arclength: float
    obstacles: tuple[Segment2, ...] = ()
    walls: SegmentSoup = field(init=False)
    left_wall: Polyline = field(init=False)
    right_wall: Polyline = field(init=False)
    centerline_arrays: CenterlineArrays = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.half_width <= 0:
            raise SimulationError(f"half_width must be positive: {self.half_width}")
        if not (0 < self.goal_arclength <= self.centerline.length):
            raise SimulationError(
                "goal_arclength must lie within the centerline "
                f"(got {self.goal_arclength}, length {self.centerline.length})"
            )
        self.left_wall = self.centerline.offset(self.half_width)
        self.right_wall = self.centerline.offset(-self.half_width)
        segments = self.left_wall.to_segments() + self.right_wall.to_segments()
        segments.extend(self._end_caps())
        segments.extend(self.obstacles)
        self.walls = SegmentSoup(segments)
        self.centerline_arrays = CenterlineArrays.from_polyline(self.centerline)

    def _end_caps(self):
        """Close the corridor at both ends so rays cannot escape."""
        caps = []
        for left, right in (
            (self.left_wall.points[0], self.right_wall.points[0]),
            (self.left_wall.points[-1], self.right_wall.points[-1]),
        ):
            caps.append(
                Segment2(float(left[0]), float(left[1]), float(right[0]), float(right[1]))
            )
        return caps

    # ------------------------------------------------------------------
    # Course coordinates
    # ------------------------------------------------------------------
    def course_coordinates(self, position: np.ndarray) -> tuple[float, float]:
        """Return ``(s, d)``: arclength progress and signed lateral offset."""
        return self.centerline.project(position)

    def heading_error(self, pose: Pose2) -> float:
        """Signed angle between the pose heading and the course tangent."""
        s, _ = self.centerline.project(pose.position)
        tangent = self.centerline.tangent_at_arclength(s)
        course_yaw = math.atan2(tangent[1], tangent[0])
        from repro.env.geometry import angle_difference

        return angle_difference(pose.yaw, course_yaw)

    def spawn_pose(
        self,
        initial_angle: float = 0.0,
        lateral_offset: float = 0.0,
        forward_offset: float = 0.5,
    ) -> Pose2:
        """Starting pose: near the course origin, offset laterally, rotated
        by ``initial_angle`` (radians) relative to the course tangent.

        ``forward_offset`` sets the distance from the corridor's start cap
        (larger vehicles need more clearance).  The paper's Figure 10
        sweeps initial angles of -20, 0 and +20 degrees.
        """
        if abs(lateral_offset) >= self.half_width:
            raise SimulationError("spawn lateral_offset places the drone in a wall")
        if forward_offset <= 0:
            raise SimulationError("forward_offset must be positive")
        start = self.centerline.point_at_arclength(0.0)
        tangent = self.centerline.tangent_at_arclength(0.0)
        normal = self.centerline.normal_at_arclength(0.0)
        pos = start + lateral_offset * normal + forward_offset * tangent
        course_yaw = math.atan2(tangent[1], tangent[0])
        return Pose2(float(pos[0]), float(pos[1]), course_yaw + initial_angle)

    # ------------------------------------------------------------------
    # Physical queries
    # ------------------------------------------------------------------
    def wall_clearance(self, position: np.ndarray) -> float:
        """Distance from ``position`` to the nearest wall."""
        return self.walls.min_distance(position)

    def in_collision(self, position: np.ndarray, radius: float) -> bool:
        """True if a disc of ``radius`` at ``position`` touches a wall, or if
        the position has left the corridor entirely."""
        if self.wall_clearance(position) <= radius:
            return True
        _, d = self.course_coordinates(position)
        return abs(d) >= self.half_width

    def depth_along(self, pose: Pose2, relative_angle: float = 0.0, max_range: float = 100.0) -> float:
        """Ray-cast distance to the nearest wall along the pose heading.

        This is the forward-facing depth reading the paper's dynamic runtime
        (Section 5.3) uses to derive deadlines.
        """
        return self.walls.cast_ray(
            pose.position, pose.yaw + relative_angle, max_range=max_range
        )

    def panorama(self, pose: Pose2, angles: np.ndarray, max_range: float = 100.0) -> np.ndarray:
        """Vectorized multi-ray cast (body-frame ``angles``) for the camera."""
        return self.walls.cast_rays(pose.position, pose.yaw + np.asarray(angles), max_range)

    def reached_goal(self, position: np.ndarray) -> bool:
        s, _ = self.course_coordinates(position)
        return s >= self.goal_arclength

    def batch_course_frames(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized course frame for many points at once.

        Returns ``(offsets, course_yaws)``: signed lateral offset and the
        course-tangent heading at the closest centerline point, for an
        ``(N, 2)`` array of world points.  Used by batched consumers (the
        MPC rollout, the camera's floor shader) that would otherwise call
        :meth:`course_coordinates` in a Python loop.
        """
        points = np.asarray(points, dtype=float)
        arrays = self.centerline_arrays
        starts, lens, units = arrays.starts, arrays.lens, arrays.units
        rel = points[:, None, :] - starts[None, :, :]  # (N, S, 2)
        t = np.clip((rel * units[None, :, :]).sum(axis=2), 0.0, lens[None, :])
        closest = starts[None, :, :] + t[..., None] * units[None, :, :]
        diff = points[:, None, :] - closest
        idx = np.argmin((diff**2).sum(axis=2), axis=1)
        rows = np.arange(points.shape[0])
        chosen_units = units[idx]
        normals = np.column_stack([-chosen_units[:, 1], chosen_units[:, 0]])
        offsets = (diff[rows, idx] * normals).sum(axis=1)
        course_yaws = np.arctan2(chosen_units[:, 1], chosen_units[:, 0])
        return offsets, course_yaws


def tunnel_world(length: float = 50.0, width: float = 3.2) -> World:
    """The paper's ``tunnel`` map: a straight corridor, 50 m x 3.2 m.

    Walls sit at y = +/-1.6 m, matching Figure 10's gray dashed boundaries.
    """
    return World(
        name="tunnel",
        centerline=Polyline(straight_centerline(length)),
        half_width=width / 2.0,
        goal_arclength=length - 1.0,
    )


def s_shape_world(
    length: float = 80.0,
    width: float = 6.4,
    amplitude: float = 10.0,
    resolution: int = 161,
) -> World:
    """The paper's ``s-shape`` map: an 80 m "S"-shaped course.

    The paper describes it as wider than the tunnel, with more room for
    error but requiring constant correction.  We realize the "S" as one
    full sine period over the course length; the mission completes at
    x = 80 m as in Figure 11.
    """
    centerline = Polyline(sine_centerline(length, amplitude, resolution))
    return World(
        name="s-shape",
        centerline=centerline,
        half_width=width / 2.0,
        goal_arclength=centerline.length - 1.0,
    )


def _scenario_world(**params) -> World:
    """Dispatch ``make_world("scenario", spec=...)`` to the compiler.

    Imported lazily so the env layer never depends on ``repro.scenario``
    at import time (the scenario package imports this module).
    """
    from repro.scenario.generate import world_from_spec

    return world_from_spec(**params)


_BUILDERS = {
    "tunnel": tunnel_world,
    "s-shape": s_shape_world,
    "s_shape": s_shape_world,
    "scenario": _scenario_world,
}


def make_world(name: str, **params) -> World:
    """Build a world by name (``"tunnel"``, ``"s-shape"``, ``"scenario"``).

    Keyword parameters are forwarded to the builder (e.g.
    ``make_world("s-shape", amplitude=8.0)``); the ``"scenario"`` builder
    takes a ``spec`` dict (the geometry/obstacles slice of a
    ``rose-scenario/1`` document) and compiles it via
    :mod:`repro.scenario.generate`.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise SimulationError(
            f"unknown world {name!r}; available: {sorted(set(_BUILDERS))}"
        ) from None
    return builder(**params)


_WORLD_CACHE: dict[tuple, World] = {}


def cached_world(name: str, **params) -> World:
    """Memoized :func:`make_world`: one shared instance per parameter set.

    Worlds are never mutated after construction (walls, centerline arrays
    and course metadata are all fixed in ``__post_init__``), so every
    simulator in a process can share one instance.  Building an s-shape
    world costs milliseconds of wall geometry; a sweep re-running hundreds
    of missions on the same map pays it once.  Unhashable parameter
    values (scenario ``spec`` dicts) key on their canonical JSON instead;
    parameters that survive neither hashing nor JSON fall back to an
    uncached build.
    """
    key: tuple[str, object]
    try:
        key = (name, tuple(sorted(params.items())))
        hash(key)
    except TypeError:
        try:
            key = (name, json.dumps(params, sort_keys=True, separators=(",", ":")))
        except (TypeError, ValueError):
            return make_world(name, **params)
    world = _WORLD_CACHE.get(key)
    if world is None:
        world = _WORLD_CACHE.setdefault(key, make_world(name, **params))
    return world
