"""Conformance subsystem: golden traces, differential oracles, invariants.

Three pillars keep the co-simulation's behaviour pinned down as the
codebase is optimized:

* :mod:`repro.verify.golden` — a corpus of canonical missions whose
  full behaviour (signature, metrics, trajectory, synchronizer op
  stream) is recorded under ``tests/golden/`` and replayed by
  ``python -m repro verify --check``;
* :mod:`repro.verify.oracles` — differential oracles pairing each
  optimized kernel/subsystem with a pure-reference implementation and
  reporting first divergences (layer, step, field);
* :mod:`repro.core.invariants` — runtime assertions woven into the
  synchronizer, bridge, and fault injector (re-exported here).
"""

from repro.core.invariants import (
    InvariantChecker,
    InvariantReport,
    invariants_enabled,
)
from repro.verify.diffutil import Divergence, first_divergence, mission_divergence
from repro.verify.golden import (
    DEFAULT_GOLDEN_DIR,
    CorpusReport,
    GoldenRecord,
    MissionCheck,
    check_corpus,
    golden_missions,
    record_corpus,
    record_mission,
)
from repro.verify.oracles import (
    DiffRunner,
    Oracle,
    OracleOutcome,
    OracleReport,
    array_divergence,
    oracle,
    registered_oracles,
)

__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "CorpusReport",
    "DiffRunner",
    "Divergence",
    "GoldenRecord",
    "InvariantChecker",
    "InvariantReport",
    "MissionCheck",
    "Oracle",
    "OracleOutcome",
    "OracleReport",
    "array_divergence",
    "check_corpus",
    "first_divergence",
    "golden_missions",
    "invariants_enabled",
    "mission_divergence",
    "oracle",
    "record_corpus",
    "record_mission",
    "registered_oracles",
]
