"""Differential oracles: optimized implementations vs. pure references.

Every performance-oriented rewrite in this repository (im2col
convolutions, scatter-based col2im, the parallel sweep engine, the TCP
transport, the result cache) has a slower, obviously-correct
counterpart.  A *differential oracle* runs both on identical inputs and
reports the **first divergence** — which layer, which step, which field,
which two values — instead of a bare pass/fail.

Oracles register themselves with :func:`oracle` and are executed by
:class:`DiffRunner`; ``python -m repro verify --oracles`` runs the whole
registry, and the tier-1 suite pins each one individually.

Tolerance policy: kernels whose optimized and reference paths perform
the *same* arithmetic (im2col/col2im gather-scatter, max pooling,
transports, caching, sweeps) are compared **bit-exactly**; kernels where
the optimized path reassociates a float32 reduction (BLAS matmul vs. a
loop of dot products) are compared to a tight element-wise tolerance,
and the first element exceeding it is reported.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.core.faults import FaultPlan
from repro.dnn import layers as opt
from repro.dnn import reference as ref
from repro.sweep.cache import ResultCache
from repro.sweep.runner import SweepRunner
from repro.sweep.signature import canonical_payload, mission_signature
from repro.verify.diffutil import Divergence, first_divergence, mission_divergence

#: Relative/absolute tolerance for kernels whose optimized path
#: reassociates a float32 sum (matmul vs. loop-of-dots).
RTOL = 1e-5
ATOL = 1e-6

#: An oracle body: runs both implementations, returns every divergence.
OracleFunc = Callable[[], list[Divergence]]

_REGISTRY: dict[str, "Oracle"] = {}


@dataclass(frozen=True)
class Oracle:
    """One registered differential check."""

    name: str
    description: str
    func: OracleFunc

    def run(self) -> list[Divergence]:
        return self.func()


def oracle(name: str, description: str) -> Callable[[OracleFunc], OracleFunc]:
    """Register a differential oracle.  The function returns divergences."""

    def register(func: OracleFunc) -> OracleFunc:
        _REGISTRY[name] = Oracle(name=name, description=description, func=func)
        return func

    return register


def registered_oracles() -> dict[str, Oracle]:
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Numeric comparison helper
# ---------------------------------------------------------------------------
def array_divergence(
    site: str,
    expected: np.ndarray,
    actual: np.ndarray,
    layer: str | None = None,
    step: int | None = None,
    exact: bool = False,
) -> Divergence | None:
    """First element where two arrays disagree, or ``None``.

    ``exact=True`` demands bitwise equality (gather/scatter kernels);
    otherwise the comparison allows float32-reassociation noise and
    reports the first element outside tolerance.
    """
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    if expected.shape != actual.shape:
        return Divergence(
            site=site,
            layer=layer,
            step=step,
            field="shape",
            expected=expected.shape,
            actual=actual.shape,
        )
    if exact:
        mismatch = expected != actual
    else:
        mismatch = ~np.isclose(expected, actual, rtol=RTOL, atol=ATOL)
    if not mismatch.any():
        return None
    index = tuple(int(i) for i in np.argwhere(mismatch)[0])
    return Divergence(
        site=site,
        layer=layer,
        step=step,
        field=f"element{list(index)}",
        expected=float(expected[index]),
        actual=float(actual[index]),
    )


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Kernel oracles (repro.dnn.layers vs repro.dnn.reference)
# ---------------------------------------------------------------------------
@oracle(
    "im2col-col2im",
    "sliding-window im2col and scatter col2im vs. explicit loop nests "
    "(exact, over a stride x kernel x pad grid)",
)
def _oracle_im2col_col2im() -> list[Divergence]:
    out: list[Divergence] = []
    rng = _rng(0)
    for stride in (1, 2, 3):
        for k in (1, 2, 3):
            for pad in (0, 1):
                x = rng.standard_normal((2, 3, 8, 9)).astype(np.float32)
                want_cols, oh, ow = ref.naive_im2col(x, k, k, stride, pad)
                got_cols, got_oh, got_ow = opt.im2col(x, k, k, stride, pad)
                case = f"k={k} stride={stride} pad={pad}"
                if (oh, ow) != (got_oh, got_ow):
                    out.append(
                        Divergence(
                            site="im2col-col2im",
                            layer=f"im2col[{case}]",
                            field="output-shape",
                            expected=(oh, ow),
                            actual=(got_oh, got_ow),
                        )
                    )
                    continue
                hit = array_divergence(
                    "im2col-col2im",
                    want_cols,
                    got_cols,
                    layer=f"im2col[{case}]",
                    exact=True,
                )
                if hit is not None:
                    out.append(hit)
                    continue
                grad_cols = rng.standard_normal(want_cols.shape).astype(np.float32)
                want_x = ref.naive_col2im(
                    grad_cols, x.shape, k, k, stride, pad, oh, ow
                )
                got_x = opt.col2im(grad_cols, x.shape, k, k, stride, pad, oh, ow)
                # Disjoint windows fold as a pure scatter (exact); the
                # overlap path accumulates per kernel offset while the
                # naive loop accumulates per patch — the float32 sums
                # reassociate, so overlaps compare to tolerance.
                hit = array_divergence(
                    "im2col-col2im",
                    want_x,
                    got_x,
                    layer=f"col2im[{case}]",
                    exact=stride >= k,
                )
                if hit is not None:
                    out.append(hit)
    return out


def _forward_cases() -> list[tuple[str, object, object, np.ndarray]]:
    """(layer-name, optimized-layer, reference-closure, input) cases."""
    rng = _rng(1)
    cases: list[tuple[str, object, object, np.ndarray]] = []

    conv = opt.Conv2d(3, 8, 3, stride=1, padding=1, rng=_rng(2), name="conv3x3")
    x = rng.standard_normal((2, 3, 10, 10)).astype(np.float32)
    cases.append(
        (
            "conv3x3",
            conv,
            lambda x, c=conv: ref.naive_conv2d_forward(
                x, c.weight.value, c.bias.value, c.stride, c.padding
            ),
            x,
        )
    )

    strided = opt.Conv2d(4, 6, 3, stride=2, padding=1, rng=_rng(3), name="conv-s2")
    xs = rng.standard_normal((1, 4, 9, 9)).astype(np.float32)
    cases.append(
        (
            "conv-s2",
            strided,
            lambda x, c=strided: ref.naive_conv2d_forward(
                x, c.weight.value, c.bias.value, c.stride, c.padding
            ),
            xs,
        )
    )

    pool = opt.MaxPool2d(2)
    xp = rng.standard_normal((2, 4, 8, 8)).astype(np.float32)
    cases.append(("maxpool2", pool, lambda x: ref.naive_maxpool_forward(x, 2, 2), xp))

    gap = opt.GlobalAvgPool2d()
    xg = rng.standard_normal((2, 5, 6, 6)).astype(np.float32)
    cases.append(("gap", gap, ref.naive_global_avgpool_forward, xg))

    fc = opt.Linear(12, 7, rng=_rng(4), name="fc")
    xf = rng.standard_normal((3, 12)).astype(np.float32)
    cases.append(
        (
            "fc",
            fc,
            lambda x, l=fc: ref.naive_linear_forward(x, l.weight.value, l.bias.value),
            xf,
        )
    )
    return cases


@oracle(
    "dnn-forward",
    "optimized layer forwards (conv/maxpool/avgpool/linear) vs. naive "
    "loop nests, layer by layer",
)
def _oracle_dnn_forward() -> list[Divergence]:
    out: list[Divergence] = []
    for name, layer, reference, x in _forward_cases():
        got = layer.forward(x)
        want = reference(x)
        exact = name in ("maxpool2", "gap")
        hit = array_divergence(
            "dnn-forward", want, got, layer=name, exact=exact
        )
        if hit is not None:
            out.append(hit)
    return out


@oracle(
    "dnn-backward",
    "conv dx/dweight/dbias (via reference col2im) and maxpool gradient "
    "routing vs. naive implementations",
)
def _oracle_dnn_backward() -> list[Divergence]:
    out: list[Divergence] = []
    rng = _rng(5)

    # Conv backward: dcols is a matmul and the 3x3/stride-2 windows
    # overlap, so dx compares to tolerance; the disjoint max-pool fold
    # below is the exact-path check.
    conv = opt.Conv2d(3, 5, 3, stride=2, padding=1, rng=_rng(6), name="conv-bwd")
    x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
    y = conv.forward(x)
    grad = rng.standard_normal(y.shape).astype(np.float32)
    for p in conv.parameters():
        p.zero_grad()
    dx = conv.backward(grad)

    n = grad.shape[0]
    _, _, oh, ow = conv._cache if conv._cache else (None, None, 0, 0)
    g2d = grad.transpose(0, 2, 3, 1).reshape(-1, conv.out_channels)
    w2d = conv.weight.value.reshape(conv.out_channels, -1)
    dcols = g2d @ w2d
    want_dx = ref.naive_col2im(
        dcols, x.shape, conv.kernel_size, conv.kernel_size,
        conv.stride, conv.padding, oh, ow,
    )
    hit = array_divergence("dnn-backward", want_dx, dx, layer="conv-bwd.dx")
    if hit is not None:
        out.append(hit)

    # dweight/dbias against per-element reference accumulation.
    want_cols, _, _ = ref.naive_im2col(
        x, conv.kernel_size, conv.kernel_size, conv.stride, conv.padding
    )
    want_dw = (g2d.T @ want_cols).reshape(conv.weight.value.shape)
    hit = array_divergence(
        "dnn-backward", want_dw, conv.weight.grad, layer="conv-bwd.dweight"
    )
    if hit is not None:
        out.append(hit)
    want_db = g2d.sum(axis=0)
    hit = array_divergence(
        "dnn-backward", want_db, conv.bias.grad, layer="conv-bwd.dbias"
    )
    if hit is not None:
        out.append(hit)

    # Max pooling gradient routing (pure gather/scatter: exact).
    pool = opt.MaxPool2d(2)
    xp = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    yp = pool.forward(xp)
    gp = rng.standard_normal(yp.shape).astype(np.float32)
    got_dxp = pool.backward(gp)
    want_dxp = ref.naive_maxpool_backward(xp, gp, 2, 2)
    hit = array_divergence(
        "dnn-backward", want_dxp, got_dxp, layer="maxpool2.dx", exact=True
    )
    if hit is not None:
        out.append(hit)
    return out


# ---------------------------------------------------------------------------
# System oracles (sweep / transport / faults / cache)
# ---------------------------------------------------------------------------
def _tiny_config(**overrides: Any) -> CoSimConfig:
    base: dict[str, Any] = dict(
        world="tunnel",
        soc="A",
        model="resnet6",
        max_sim_time=1.0,
        check_invariants=True,
    )
    base.update(overrides)
    return CoSimConfig(**base)


def _mission_pair_divergence(
    site: str, reference_cfg: CoSimConfig, optimized_cfg: CoSimConfig
) -> list[Divergence]:
    """Run both configs and first-diverge their canonical payloads."""
    want = run_mission(reference_cfg)
    got = run_mission(optimized_cfg)
    if mission_signature(want) == mission_signature(got):
        return []
    hit = mission_divergence(canonical_payload(want), canonical_payload(got), site)
    if hit is None:  # signature differs but payloads match: impossible unless
        hit = Divergence(  # canonicalization itself broke — still report.
            site=site,
            field="signature",
            expected=mission_signature(want),
            actual=mission_signature(got),
        )
    return [hit]


@oracle(
    "sweep-parallel",
    "two-worker sweep vs. in-process serial reference runs "
    "(bit-identical signatures)",
)
def _oracle_sweep_parallel() -> list[Divergence]:
    configs = [_tiny_config(seed=s) for s in (0, 1, 2)]
    want = [run_mission(cfg) for cfg in configs]  # serial reference
    report = SweepRunner(workers=2).run(
        [(f"seed{cfg.seed}", cfg) for cfg in configs]
    )
    out: list[Divergence] = []
    for cfg, reference, outcome in zip(configs, want, report.outcomes):
        if mission_signature(reference) == mission_signature(outcome.result):
            continue
        hit = mission_divergence(
            canonical_payload(reference),
            canonical_payload(outcome.result),
            f"sweep-parallel[seed={cfg.seed}]",
        )
        if hit is not None:
            out.append(hit)
    return out


@oracle(
    "batch-vs-serial",
    "lockstep batched engine vs. per-mission serial runs over a mixed "
    "group (seeds, models, mission lengths): bit-identical signatures",
)
def _oracle_batch_vs_serial() -> list[Divergence]:
    from repro.batch.engine import run_missions_batched

    # A deliberately ragged group: different seeds, different DNNs, and
    # one mission that terminates early — plus an ineligible (MPC) lane
    # that must route through the serial fallback unchanged.
    configs = [
        _tiny_config(seed=0, model="resnet6"),
        _tiny_config(seed=1, model="resnet11"),
        _tiny_config(seed=2, model="resnet6", max_sim_time=0.5),
        _tiny_config(seed=3, controller="mpc"),
    ]
    want = [run_mission(cfg) for cfg in configs]  # serial reference
    got = run_missions_batched(configs, batch_size=len(configs))
    out: list[Divergence] = []
    for cfg, reference, batched in zip(configs, want, got):
        if mission_signature(reference) == mission_signature(batched):
            continue
        hit = mission_divergence(
            canonical_payload(reference),
            canonical_payload(batched),
            f"batch-vs-serial[seed={cfg.seed}]",
        )
        if hit is not None:
            out.append(hit)
    return out


@oracle(
    "batch-cnn-forward",
    "one batched CNN forward over N frames vs. N single-frame forwards "
    "(the only tolerance site in the batched engine: the batch GEMM "
    "reassociates the float32 reduction)",
)
def _oracle_batch_cnn_forward() -> list[Divergence]:
    from repro.dnn.resnet import build_trainable_trailnet

    model = build_trainable_trailnet(seed=7)
    model.eval()
    frames = _rng(11).random((6, 1, 32, 48), dtype=np.float32)
    batched_ang, batched_lat = model.predict_probs(frames)
    out: list[Divergence] = []
    for i in range(frames.shape[0]):
        single_ang, single_lat = model.predict_probs(frames[i : i + 1])
        for channel, batched, single in (
            ("angular", batched_ang[i], single_ang[0]),
            ("lateral", batched_lat[i], single_lat[0]),
        ):
            hit = array_divergence(
                f"batch-cnn-forward[frame={i}]",
                single,
                batched,
                layer=channel,
            )
            if hit is not None:
                out.append(hit)
    return out


@oracle(
    "sweep-chaos",
    "sweep with injected worker faults (exception + crash + hang) vs. "
    "fault-free serial reference runs: retries must converge to "
    "bit-identical signatures",
)
def _oracle_sweep_chaos() -> list[Divergence]:
    # Imported here so chaos machinery stays out of fault-free oracles.
    import os

    from repro.sweep.chaos import CHAOS_ENV, ChaosPlan
    from repro.sweep.fingerprint import config_key
    from repro.sweep.resilience import RetryPolicy

    configs = [_tiny_config(seed=s) for s in (0, 1, 2)]
    want = [run_mission(cfg) for cfg in configs]  # fault-free serial reference

    # Force one fault of each kind onto a distinct task (deterministic
    # coverage, no probabilistic flake); max_faulty_attempts bounds the
    # faults below the retry budget so convergence is guaranteed.
    keys = [config_key(cfg) for cfg in configs]
    plan = ChaosPlan(
        forced=(
            (keys[0][:16], "fail"),
            (keys[1][:16], "crash"),
            (keys[2][:16], "hang"),
        ),
        max_faulty_attempts=1,
        hang_seconds=120.0,
    )
    runner = SweepRunner(
        workers=2,
        retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05),
        task_timeout=8.0,
    )
    previous = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = plan.to_json()
    try:
        report = runner.run([(f"seed{cfg.seed}", cfg) for cfg in configs])
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = previous

    out: list[Divergence] = []
    for cfg, reference, outcome in zip(configs, want, report.outcomes):
        if not outcome.ok or outcome.result is None:
            out.append(
                Divergence(
                    site=f"sweep-chaos[seed={cfg.seed}]",
                    field="state",
                    expected="ok (recovered via retries)",
                    actual=outcome.state,
                )
            )
            continue
        if mission_signature(reference) == mission_signature(outcome.result):
            continue
        hit = mission_divergence(
            canonical_payload(reference),
            canonical_payload(outcome.result),
            f"sweep-chaos[seed={cfg.seed}]",
        )
        if hit is not None:
            out.append(hit)
    if report.retries == 0:
        out.append(
            Divergence(
                site="sweep-chaos",
                field="retries",
                expected="> 0 (faults were injected)",
                actual=0,
            )
        )
    return out


@oracle(
    "service-vs-serial",
    "fig11-style sweep through the serve API (2 shards, one killed "
    "mid-sweep and its work stolen) vs. the serial single-host sweep: "
    "bit-identical report signatures",
)
def _oracle_service_vs_serial() -> list[Divergence]:
    # Imported here so fault-free oracles never pay for the serve stack.
    from repro.core.manifest import config_to_dict
    from repro.serve import FakeClock, SweepService, dispatch
    from repro.serve.service import report_signature

    tasks = [(f"seed{s}", _tiny_config(seed=s)) for s in (0, 1, 2, 3)]
    serial = SweepRunner().run(tasks)  # serial single-host reference
    want = report_signature(serial)

    out: list[Divergence] = []
    with tempfile.TemporaryDirectory(prefix="repro-oracle-serve-") as root:
        clock = FakeClock()
        service = SweepService(Path(root), clock=clock)
        status, payload = dispatch(
            service,
            "POST",
            "/v1/jobs",
            {
                "name": "service-vs-serial",
                "tasks": [
                    {"name": name, "config": config_to_dict(config)}
                    for name, config in tasks
                ],
                "params": {"shards": 2, "lease_seconds": 30.0},
            },
        )
        if status != 202:
            return [
                Divergence(
                    site="service-vs-serial",
                    field="submit",
                    expected="HTTP 202 (new job accepted)",
                    actual=f"HTTP {status}: {payload}",
                )
            ]
        job_id = payload["job"]
        # Shard 0 leases its slice and dies without reporting; shard 1
        # finishes its own slice, then steals the dead shard's work once
        # the lease expires.
        dead = service.worker("shard-0", abort=lambda: True)
        alive = service.worker("shard-1")
        dead.step()
        alive.drain()
        clock.advance(31.0)
        service.scheduler.tick()
        alive.drain()

        final = service.status(job_id)
        if final["state"] != "done":
            out.append(
                Divergence(
                    site="service-vs-serial",
                    field="state",
                    expected="done",
                    actual=final["state"],
                )
            )
        if final["steals"] == 0:
            out.append(
                Divergence(
                    site="service-vs-serial",
                    field="steals",
                    expected="> 0 (shard-0's slice must be stolen)",
                    actual=0,
                )
            )
        if final["state"] in ("done", "failed"):
            got = report_signature(service.report(job_id))
            if got != want:
                out.append(
                    Divergence(
                        site="service-vs-serial",
                        field="report_signature",
                        expected=want,
                        actual=got,
                    )
                )
    return out


@oracle(
    "transport-tcp",
    "TCP transport mission vs. the in-process reference transport "
    "(bit-identical behaviour)",
)
def _oracle_transport_tcp() -> list[Divergence]:
    return _mission_pair_divergence(
        "transport-tcp",
        _tiny_config(transport="inprocess"),
        _tiny_config(transport="tcp"),
    )


@oracle(
    "fault-noop",
    "empty FaultPlan vs. no fault injector at all (the no-op reference): "
    "wiring the injector must not change behaviour",
)
def _oracle_fault_noop() -> list[Divergence]:
    return _mission_pair_divergence(
        "fault-noop",
        _tiny_config(faults=None),
        _tiny_config(faults=FaultPlan()),
    )


@oracle(
    "scenario-compile",
    "rose-scenario/1 documents of the legacy families vs. the hand-built "
    "tunnel / s-shape worlds and configs: bit-identical geometry, config "
    "dicts, and mission signatures",
)
def _oracle_scenario_compile() -> list[Divergence]:
    # Imported here so the oracle registry never pays for the scenario
    # package unless this oracle runs.
    from repro.core.manifest import config_to_dict
    from repro.env.worlds import make_world
    from repro.scenario import compile_config, legacy_scenarios, world_from_scenario

    out: list[Divergence] = []
    for name, scenario in sorted(legacy_scenarios().items()):
        site = f"scenario-compile[{name}]"
        want_world = make_world(name)
        got_world = world_from_scenario(scenario)

        hit = array_divergence(
            site,
            want_world.centerline.points,
            got_world.centerline.points,
            layer="centerline",
            exact=True,
        )
        if hit is not None:
            out.append(hit)
        for field_name in ("half_width", "goal_arclength"):
            want_value = getattr(want_world, field_name)
            got_value = getattr(got_world, field_name)
            if want_value != got_value:
                out.append(
                    Divergence(
                        site=site,
                        field=field_name,
                        expected=want_value,
                        actual=got_value,
                    )
                )
        want_segments = np.array(
            [(s.ax, s.ay, s.bx, s.by) for s in want_world.walls.segments]
        )
        got_segments = np.array(
            [(s.ax, s.ay, s.bx, s.by) for s in got_world.walls.segments]
        )
        hit = array_divergence(
            site, want_segments, got_segments, layer="walls", exact=True
        )
        if hit is not None:
            out.append(hit)

        # The compiled config must be byte-for-byte the hand-written one.
        want_cfg = CoSimConfig(world=name)
        got_cfg = compile_config(scenario)
        want_dict, got_dict = config_to_dict(want_cfg), config_to_dict(got_cfg)
        if want_dict != got_dict:
            hit = first_divergence(want_dict, got_dict, f"{site}.config")
            if hit is not None:
                out.append(hit)

    # A scenario *forced* through the generic compiler (world="scenario"
    # with an explicit spec) must fly bit-identically to the native
    # config: the mission signature covers behaviour, not world labels.
    import dataclasses

    tunnel = legacy_scenarios()["tunnel"]
    native = compile_config(tunnel, max_sim_time=1.5)
    forced = dataclasses.replace(
        native,
        world="scenario",
        world_params={
            "spec": {"geometry": tunnel.geometry.to_dict(), "obstacles": []}
        },
    )
    out.extend(_mission_pair_divergence("scenario-compile[forced]", native, forced))
    return out


def _series_sum(snapshot: dict[str, Any], name: str, **labels: str) -> int | float:
    """Sum the series of ``name`` whose labels match every given pair."""
    entry = snapshot.get(name, {})
    total: int | float = 0
    for row in entry.get("series", []):
        if all(row["labels"].get(k) == v for k, v in labels.items()):
            total += row["value"]
    return total


@oracle(
    "obs-snapshot",
    "flight-recorder metrics vs. the legacy stats counters they shadow "
    "(independently recorded, must agree exactly) plus replay determinism",
)
def _oracle_obs_snapshot() -> list[Divergence]:
    out: list[Divergence] = []
    cfg = _tiny_config(seed=5, faults=FaultPlan.sensor_response_drop(0.2, seed=3))
    result = run_mission(cfg)
    if result.obs is None:
        return [
            Divergence(
                site="obs-snapshot",
                field="obs",
                expected="a FlightRecord on the mission result",
                actual="<none>",
            )
        ]
    snap = result.obs.metrics

    def check(field: str, expected: Any, actual: Any) -> None:
        if expected != actual:
            out.append(
                Divergence(
                    site="obs-snapshot",
                    field=field,
                    expected=expected,
                    actual=actual,
                )
            )

    stats = result.sync_stats
    assert stats is not None
    check("steps", stats.steps, _series_sum(snap, "rose_sync_steps_total"))
    # stats.packets_to_rtl counts only data packets (_transmit); the link
    # counter also sees SYNC_GRANT/SYNC_SET_STEPS/SYNC_SHUTDOWN control
    # traffic, so exclude SYNC_* series from the comparison.
    data_to_rtl = sum(
        row["value"]
        for row in snap.get("rose_link_packets_total", {}).get("series", [])
        if row["labels"]["direction"] == "to_rtl"
        and not row["labels"]["ptype"].startswith("SYNC_")
    )
    check("packets_to_rtl", stats.packets_to_rtl, data_to_rtl)
    check(
        "packets_from_rtl",
        stats.packets_from_rtl,
        _series_sum(snap, "rose_link_packets_total", direction="from_rtl"),
    )
    # The fault injector records rose_faults_injected_total at its own
    # decision sites; the synchronizer records rose_link_faults_total when
    # it applies each verdict.  Two independent recorders, one event.
    for kind in ("drop", "corrupt", "duplicate", "delay"):
        check(
            f"faults[{kind}]",
            _series_sum(snap, "rose_link_faults_total", kind=kind),
            _series_sum(snap, "rose_faults_injected_total", kind=kind),
        )

    app = result.app_stats
    assert app is not None
    check(
        "inference_count",
        app.inference_count,
        _series_sum(snap, "rose_app_inferences_total"),
    )
    latency = snap.get("rose_app_inference_latency_cycles", {})
    check(
        "inference_latency.count",
        app.inference_count,
        sum(row["count"] for row in latency.get("series", [])),
    )
    check("soc_cycles", result.soc_cycles, _series_sum(snap, "rose_soc_cycles_total"))
    check(
        "collisions",
        result.collisions,
        _series_sum(snap, "rose_mission_collisions_total"),
    )

    # Replay determinism: an identical second run must produce a
    # byte-identical snapshot (sorted keys, fixed buckets — no slack).
    replay = run_mission(cfg)
    if replay.obs is not None and replay.obs.metrics != snap:
        hit = first_divergence(snap, replay.obs.metrics, "obs-snapshot.replay")
        if hit is not None:
            out.append(hit)
    return out


@oracle(
    "lint-clean",
    "repro.analysis.lint over the shipped tree vs. an empty report: every "
    "static-analysis finding is fixed, waived inline, or baselined",
)
def _oracle_lint_clean() -> list[Divergence]:
    # Imported here (not module scope) so a broken lint package fails its
    # own oracle without taking down the rest of the registry.
    import repro
    from repro.analysis.lint import Baseline, LintEngine, baseline_path_for

    root = Path(repro.__file__).resolve().parent.parent
    baseline = Baseline.load(baseline_path_for(root))
    report = LintEngine(root, baseline=baseline).run()
    out = [
        Divergence(
            site="lint-clean",
            field=f"{diag.path}:{diag.line}",
            expected="no finding",
            actual=f"{diag.rule} {diag.message}",
        )
        for diag in report.active
    ]
    out.extend(
        Divergence(
            site="lint-clean",
            field=f"{entry['path']}:{entry['line']}",
            expected="a finding matching this baseline entry",
            actual="<stale baseline entry>",
        )
        for entry in report.stale_baseline
    )
    out.extend(
        Divergence(
            site="lint-clean",
            field="parse",
            expected="parseable source",
            actual=error,
        )
        for error in report.parse_errors
    )
    return out


@oracle(
    "deepcheck-clean",
    "repro.analysis.deepcheck whole-program passes (determinism taint, "
    "fork/thread races, protocol conformance) plus stale-waiver detection "
    "over the shipped tree vs. an empty report",
)
def _oracle_deepcheck_clean() -> list[Divergence]:
    import repro
    from repro.analysis.lint import Baseline, LintEngine, baseline_path_for

    root = Path(repro.__file__).resolve().parent.parent
    baseline = Baseline.load(baseline_path_for(root))
    report = LintEngine(root, baseline=baseline, deep=True, check_waivers=True).run()
    return [
        Divergence(
            site="deepcheck-clean",
            field=f"{diag.path}:{diag.line}",
            expected="no finding",
            actual=f"{diag.rule} {diag.message}",
        )
        for diag in report.active
    ]


@oracle(
    "cache-roundtrip",
    "ResultCache store/load round-trip vs. the in-memory result "
    "(bit-identical signature and payload)",
)
def _oracle_cache_roundtrip() -> list[Divergence]:
    cfg = _tiny_config(seed=3)
    want = run_mission(cfg)
    with tempfile.TemporaryDirectory(prefix="repro-oracle-cache-") as root:
        cache = ResultCache(Path(root))
        cache.put(cfg, want)
        got = cache.get(cfg)
    if got is None:
        return [
            Divergence(
                site="cache-roundtrip",
                field="get",
                expected="stored result",
                actual="<cache miss>",
            )
        ]
    if mission_signature(want) == mission_signature(got):
        return []
    hit = mission_divergence(
        canonical_payload(want), canonical_payload(got), "cache-roundtrip"
    )
    return [hit] if hit is not None else []


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
@dataclass
class OracleOutcome:
    name: str
    description: str
    divergences: list[Divergence] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.error

    def describe(self) -> str:
        if self.ok:
            return f"[ok]    {self.name}"
        lines = [f"[FAIL]  {self.name}"]
        if self.error:
            lines.append(f"        error: {self.error}")
        lines.extend(f"        {d.describe()}" for d in self.divergences)
        return "\n".join(lines)


@dataclass
class OracleReport:
    outcomes: list[OracleOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def describe(self) -> str:
        lines = [outcome.describe() for outcome in self.outcomes]
        passed = sum(1 for outcome in self.outcomes if outcome.ok)
        lines.append(f"{passed}/{len(self.outcomes)} differential oracle(s) agree")
        return "\n".join(lines)


class DiffRunner:
    """Executes registered oracles and collects their divergences.

    An oracle that *raises* is reported as a failure with the exception
    text rather than aborting the rest of the registry — a broken kernel
    should fail its own oracle, not hide the others.
    """

    def __init__(self, names: list[str] | None = None):
        registry = registered_oracles()
        if names:
            unknown = sorted(set(names) - set(registry))
            if unknown:
                raise KeyError(f"unknown oracle(s): {', '.join(unknown)}")
            self.oracles = [registry[name] for name in names]
        else:
            self.oracles = [registry[name] for name in sorted(registry)]

    def run(self) -> OracleReport:
        report = OracleReport()
        for orc in self.oracles:
            outcome = OracleOutcome(name=orc.name, description=orc.description)
            try:
                outcome.divergences = list(orc.run())
            except Exception as exc:  # noqa: BLE001 - isolate oracle crashes
                outcome.error = f"{type(exc).__name__}: {exc}"
            report.outcomes.append(outcome)
        return report
