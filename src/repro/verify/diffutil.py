"""First-divergence reporting for conformance comparisons.

A bare hash mismatch says *that* two runs differ; the conformance
subsystem must say *where*.  :func:`first_divergence` walks two nested
JSON-like structures (the canonical mission payloads of
:func:`repro.sweep.signature.canonical_payload`, or any oracle's
expected/actual pair) in deterministic key order and returns the first
leaf that differs as a :class:`Divergence` — site, step, field, and the
two values.

For mission payloads, :func:`mission_divergence` additionally translates
raw list indices into the domain vocabulary: ``op_stream[12][6]``
becomes *step 12, field speed* and ``trajectory[40][1]`` becomes
*sample 40, field x*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.csvlog import SyncLogRow
from repro.sweep.signature import TRAJECTORY_FIELDS


@dataclass(frozen=True)
class Divergence:
    """The first point where an optimized and a reference run disagree."""

    site: str  # mission name, oracle name, or layer name
    field: str  # domain field name or structural path
    expected: object
    actual: object
    step: int | None = None  # sync step / sample / case index, if applicable
    layer: str | None = None  # DNN layer name, for the kernel oracles

    def describe(self) -> str:
        where = self.site
        if self.layer is not None:
            where += f" @ layer {self.layer}"
        if self.step is not None:
            where += f" @ step {self.step}"
        return (
            f"{where}: field {self.field!r} expected {self.expected!r}, "
            f"got {self.actual!r}"
        )


def _walk(
    expected: object, actual: object, path: str
) -> tuple[str, object, object] | None:
    """Yield the first differing (path, expected, actual) leaf, if any."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                return f"{path}.{key}" if path else str(key), "<absent>", actual[key]
            if key not in actual:
                return f"{path}.{key}" if path else str(key), expected[key], "<absent>"
            hit = _walk(
                expected[key], actual[key], f"{path}.{key}" if path else str(key)
            )
            if hit is not None:
                return hit
        return None
    if isinstance(expected, (list, tuple)) and isinstance(actual, (list, tuple)):
        for index in range(min(len(expected), len(actual))):
            hit = _walk(expected[index], actual[index], f"{path}[{index}]")
            if hit is not None:
                return hit
        if len(expected) != len(actual):
            return (
                f"{path}.length",
                len(expected),
                len(actual),
            )
        return None
    if expected != actual:
        return path, expected, actual
    return None


def first_divergence(
    expected: object, actual: object, site: str = "payload"
) -> Divergence | None:
    """Structural diff: the first differing leaf, or ``None`` if equal."""
    hit = _walk(expected, actual, "")
    if hit is None:
        return None
    path, want, got = hit
    return Divergence(site=site, field=path, expected=want, actual=got)


def _parse_index(path: str, prefix: str) -> tuple[int, str] | None:
    """Split ``prefix[i]...rest`` into (i, rest); None if not that shape."""
    if not path.startswith(prefix + "["):
        return None
    closing = path.index("]", len(prefix) + 1)
    index = int(path[len(prefix) + 1 : closing])
    return index, path[closing + 1 :]


def mission_divergence(
    expected_payload: dict[str, object], actual_payload: dict[str, object], site: str
) -> Divergence | None:
    """First divergence between two canonical mission payloads.

    Indices into the ``op_stream`` and ``trajectory`` row lists are
    translated to step/sample numbers and column names so the report
    reads in the domain's vocabulary.
    """
    raw = first_divergence(expected_payload, actual_payload, site)
    if raw is None:
        return None
    for prefix, columns, noun in (
        ("op_stream", SyncLogRow.FIELDS, "step"),
        ("trajectory", TRAJECTORY_FIELDS, "sample"),
    ):
        parsed = _parse_index(raw.field, prefix)
        if parsed is None:
            continue
        row, rest = parsed
        field = f"{prefix}.{rest}" if rest else prefix
        inner = _parse_index(rest, "") if rest.startswith("[") else None
        if inner is not None:
            column, _ = inner
            if column < len(columns):
                field = f"{prefix}.{columns[column]}"
        return Divergence(
            site=site,
            field=f"{field} ({noun} {row})",
            expected=raw.expected,
            actual=raw.actual,
            step=row,
        )
    return raw
