"""The golden-trace corpus: canonical missions with recorded behaviour.

RoSÉ's lockstep synchronization makes every closed-loop mission
deterministic and reproducible (ISCA 2023, Section 4) — so a mission's
entire behaviour can be recorded once and every future change checked
against it.  This module defines a corpus of small canonical missions
spanning the axes the paper sweeps (world x SoC x DNN x sync granularity
x controller x fault plan) and records, per mission:

* the ``mission_signature`` (one hash over everything the run means),
* the scalar metric vector (completion, collisions, velocity, cycles…),
* the full canonical payload — trajectory samples and the
  synchronizer's per-step op stream — so drift is reported as a
  *first divergence* (step, field, expected, actual), never as a bare
  hash mismatch.

Records live under ``tests/golden/`` as one JSON file per mission.
``python -m repro verify --check`` replays the corpus and fails loudly
on any behavioural drift; ``--record`` re-records after an intentional
behaviour change, printing what moved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import run_mission
from repro.core.faults import FaultPlan
from repro.core.manifest import config_from_dict, config_to_dict
from repro.sweep.signature import canonical_payload, mission_signature
from repro.verify.diffutil import Divergence, first_divergence, mission_divergence

GOLDEN_FORMAT = "rose-golden/1"

#: Default corpus location, relative to the repository root.
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Committed fuzzer-discovered scenario documents (rose-scenario/1).
SCENARIO_DIR = Path(__file__).resolve().parents[3] / "tests" / "scenarios"

#: The scalar metrics surfaced in records and drift reports.
METRIC_FIELDS = (
    "completed",
    "mission_time",
    "failure_reason",
    "sim_time",
    "collisions",
    "progress",
    "average_velocity",
    "activity_factor",
    "soc_cycles",
    "gemmini_busy_cycles",
    "inference_count",
    "mean_inference_latency_ms",
)


def _scenario_mission(filename: str, max_sim_time: float | None = None) -> CoSimConfig:
    """Compile a committed rose-scenario/1 document into a mission config."""
    from repro.scenario import compile_config
    from repro.scenario.schema import Scenario

    doc = json.loads((SCENARIO_DIR / filename).read_text())
    return compile_config(Scenario.from_dict(doc), max_sim_time=max_sim_time)


def golden_missions() -> dict[str, CoSimConfig]:
    """The canonical corpus: one small mission per covered axis.

    Missions are deliberately short (1.5-2 s of simulated time) so the
    whole corpus replays in seconds; each exists to pin down one axis the
    optimization PRs touch — kernels (DNN controllers), sweep/caching
    (every mission), sync granularity, transports, and fault injection.
    """
    return {
        # Baseline: the paper's default closed-loop config.
        "tunnel-dnn-r14-socA": CoSimConfig(
            world="tunnel", soc="A", model="resnet14", max_sim_time=2.0
        ),
        # Small DNN on the Rocket-class SoC.
        "tunnel-dnn-r6-socB": CoSimConfig(
            world="tunnel", soc="B", model="resnet6", max_sim_time=2.0
        ),
        # Second world geometry.
        "sshape-dnn-r14-socA": CoSimConfig(
            world="s-shape", soc="A", model="resnet14", max_sim_time=2.0
        ),
        # Non-DNN controller (no Gemmini in the loop).
        "tunnel-mpc-socA": CoSimConfig(
            world="tunnel", soc="A", controller="mpc", max_sim_time=1.5
        ),
        # Coarse synchronization granularity (Figure 16's right end).
        "tunnel-dnn-sync40M": CoSimConfig(
            world="tunnel",
            soc="A",
            model="resnet14",
            sync=SyncConfig(cycles_per_sync=40_000_000),
            max_sim_time=2.0,
        ),
        # Camera+IMU fusion controller.
        "tunnel-fusion-r6": CoSimConfig(
            world="tunnel",
            soc="A",
            controller="fusion",
            model="resnet6",
            max_sim_time=2.0,
        ),
        # Section 5.3's adaptive dual-network runtime.
        "tunnel-dnn-dynamic": CoSimConfig(
            world="tunnel", soc="A", dynamic_runtime=True, max_sim_time=2.0
        ),
        # Quantized Gemmini datapath.
        "tunnel-dnn-r14-int8": CoSimConfig(
            world="tunnel",
            soc="A",
            model="resnet14",
            gemmini_dtype="int8",
            max_sim_time=2.0,
        ),
        # Seeded fault injection: drops + the degradation paths.
        "tunnel-dnn-faulty-drop": CoSimConfig(
            world="tunnel",
            soc="A",
            model="resnet14",
            max_sim_time=2.0,
            faults=FaultPlan.sensor_response_drop(0.1, seed=7),
        ),
        # Seeded corruption: CRC-discard and recovery paths.
        "tunnel-dnn-faulty-corrupt": CoSimConfig(
            world="tunnel",
            soc="A",
            model="resnet14",
            max_sim_time=2.0,
            faults=FaultPlan(
                seed=11,
                rules=(
                    {"ptype": "CAMERA_RESP", "corrupt": 0.2, "duplicate": 0.1},
                    {"ptype": "IMU_RESP", "delay": 0.2},
                ),
            ),
        ),
        # Fuzzer-discovered (coverage-guided campaign, seed 1): an
        # aggressive all-sensor corruption plan on a short sine course.
        # Trips the CRC-storm degradation path within 2 s; the committed
        # document reproduces a crash on its full 8 s budget.
        "scenario-fuzz-crc-storm": _scenario_mission(
            "fuzz-crc-storm.json", max_sim_time=2.0
        ),
        # Fuzzer-discovered coverage frontier: a fault-free straight
        # course flown fast enough to finish inside the budget — the
        # first corpus entry to reach the completed/100%-progress bins.
        "scenario-fuzz-frontier": _scenario_mission("fuzz-frontier.json"),
    }


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------
@dataclass
class GoldenRecord:
    """One mission's recorded behaviour."""

    name: str
    config: dict[str, Any]
    signature: str
    metrics: dict[str, Any]
    payload: dict[str, Any]
    #: The mission's deterministic obs snapshot (repro.obs metrics dict).
    #: ``None`` in records captured before the observability layer existed
    #: — the checker tolerates that and compares only when present.
    obs: dict[str, Any] | None = None

    def to_json(self) -> str:
        data: dict[str, Any] = {
            "format": GOLDEN_FORMAT,
            "name": self.name,
            "config": self.config,
            "signature": self.signature,
            "metrics": self.metrics,
            "payload": self.payload,
        }
        if self.obs is not None:
            data["obs"] = self.obs
        return json.dumps(data, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "GoldenRecord":
        data = json.loads(text)
        if data.get("format") != GOLDEN_FORMAT:
            raise ValueError(f"unsupported golden format {data.get('format')!r}")
        return cls(
            name=data["name"],
            config=data["config"],
            signature=data["signature"],
            metrics=data["metrics"],
            payload=data["payload"],
            obs=data.get("obs"),
        )


def record_mission(name: str, config: CoSimConfig) -> GoldenRecord:
    """Run one mission and capture its golden record."""
    result = run_mission(config)
    payload = canonical_payload(result)
    metrics = {key: payload[key] for key in METRIC_FIELDS if key in payload}
    return GoldenRecord(
        name=name,
        config=config_to_dict(config),
        signature=mission_signature(result),
        metrics=metrics,
        payload=payload,
        obs=result.obs.metrics if result.obs is not None else None,
    )


# ---------------------------------------------------------------------------
# Check / record over a corpus directory
# ---------------------------------------------------------------------------
@dataclass
class MissionCheck:
    """Outcome of replaying one golden mission."""

    name: str
    status: str  # "ok" | "drift" | "config-drift" | "missing" | "stale"
    divergence: Divergence | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> str:
        if self.ok:
            return f"[ok]    {self.name}"
        line = f"[{self.status.upper()}] {self.name}"
        if self.detail:
            line += f": {self.detail}"
        if self.divergence is not None:
            line += f"\n        first divergence -> {self.divergence.describe()}"
        return line


@dataclass
class CorpusReport:
    """Everything one ``--check`` or ``--record`` pass produced."""

    checks: list[MissionCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[MissionCheck]:
        return [check for check in self.checks if not check.ok]

    def describe(self) -> str:
        lines = [check.describe() for check in self.checks]
        passed = sum(1 for check in self.checks if check.ok)
        lines.append(f"{passed}/{len(self.checks)} golden mission(s) conform")
        return "\n".join(lines)


def _record_path(golden_dir: Path, name: str) -> Path:
    return Path(golden_dir) / f"{name}.json"


def _json_round_trip(data: dict[str, Any]) -> dict[str, Any]:
    """Normalize through JSON so tuples/lists compare structurally equal.

    Stored records pass through JSON (tuples become lists); a freshly
    built ``config_to_dict`` has not — without this, every FaultPlan
    config would report spurious drift.
    """
    return json.loads(json.dumps(data, sort_keys=True))


def _check_one(name: str, config: CoSimConfig, record: GoldenRecord) -> MissionCheck:
    """Replay one mission against its record."""
    recorded_config = _json_round_trip(record.config)
    current_config = _json_round_trip(config_to_dict(config))
    if recorded_config != current_config:
        divergence = first_divergence(recorded_config, current_config, name)
        return MissionCheck(
            name=name,
            status="config-drift",
            divergence=divergence,
            detail="corpus definition changed; re-record with "
            "`python -m repro verify --record`",
        )
    result = run_mission(config)
    signature = mission_signature(result)
    if signature == record.signature:
        # The signature covers the canonical payload; the obs snapshot is
        # checked separately so telemetry drift is caught even when the
        # legacy metrics agree.  Records captured before the observability
        # layer existed carry no snapshot and are tolerated as-is.
        if record.obs is not None and result.obs is not None:
            recorded_obs = _json_round_trip(record.obs)
            current_obs = _json_round_trip(result.obs.metrics)
            if recorded_obs != current_obs:
                divergence = first_divergence(
                    recorded_obs, current_obs, f"{name}.obs"
                )
                return MissionCheck(
                    name=name,
                    status="drift",
                    divergence=divergence,
                    detail="obs snapshot diverged from recorded telemetry",
                )
        return MissionCheck(name=name, status="ok")
    payload = canonical_payload(result)
    divergence = mission_divergence(record.payload, payload, name)
    if divergence is None:
        # Signature moved but the stored payload matches: the record file
        # itself is inconsistent (hand-edited or truncated).
        return MissionCheck(
            name=name,
            status="drift",
            detail=f"stored signature {record.signature[:12]} does not match "
            f"its own payload (recomputed {signature[:12]}); re-record",
        )
    return MissionCheck(
        name=name,
        status="drift",
        divergence=divergence,
        detail=f"signature {record.signature[:12]} -> {signature[:12]}",
    )


def check_corpus(
    golden_dir: str | Path = DEFAULT_GOLDEN_DIR,
    missions: dict[str, CoSimConfig] | None = None,
    only: str | None = None,
) -> CorpusReport:
    """Replay the corpus against its records; report every mismatch."""
    golden_dir = Path(golden_dir)
    missions = golden_missions() if missions is None else missions
    if only is not None:
        missions = {name: cfg for name, cfg in missions.items() if name == only}
    report = CorpusReport()
    for name, config in sorted(missions.items()):
        path = _record_path(golden_dir, name)
        if not path.is_file():
            report.checks.append(
                MissionCheck(
                    name=name,
                    status="missing",
                    detail=f"no record at {path}; run "
                    "`python -m repro verify --record`",
                )
            )
            continue
        try:
            record = GoldenRecord.from_json(path.read_text())
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            report.checks.append(
                MissionCheck(
                    name=name, status="drift", detail=f"unreadable record: {exc}"
                )
            )
            continue
        report.checks.append(_check_one(name, config, record))
    # Records with no matching corpus definition are stale.
    known = set(missions)
    if only is None and golden_dir.is_dir():
        for path in sorted(golden_dir.glob("*.json")):
            if path.stem not in known:
                report.checks.append(
                    MissionCheck(
                        name=path.stem,
                        status="stale",
                        detail="record has no corpus definition; delete it or "
                        "restore the mission",
                    )
                )
    return report


def record_corpus(
    golden_dir: str | Path = DEFAULT_GOLDEN_DIR,
    missions: dict[str, CoSimConfig] | None = None,
    only: str | None = None,
) -> CorpusReport:
    """(Re-)record the corpus; report what changed relative to disk."""
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    missions = golden_missions() if missions is None else missions
    if only is not None:
        missions = {name: cfg for name, cfg in missions.items() if name == only}
    report = CorpusReport()
    for name, config in sorted(missions.items()):
        record = record_mission(name, config)
        path = _record_path(golden_dir, name)
        if path.is_file():
            try:
                previous = GoldenRecord.from_json(path.read_text())
            except (ValueError, KeyError, json.JSONDecodeError):
                previous = None
            if previous is not None and previous.signature != record.signature:
                divergence = mission_divergence(
                    previous.payload, record.payload, name
                )
                report.checks.append(
                    MissionCheck(
                        name=name,
                        status="drift",
                        divergence=divergence,
                        detail="re-recorded with new behaviour "
                        f"({previous.signature[:12]} -> {record.signature[:12]})",
                    )
                )
            else:
                report.checks.append(MissionCheck(name=name, status="ok"))
        else:
            report.checks.append(
                MissionCheck(name=name, status="ok", detail="new record")
            )
        path.write_text(record.to_json() + "\n")
    return report


def load_record(golden_dir: str | Path, name: str) -> GoldenRecord:
    """Load one committed record (raises if absent/unreadable)."""
    return GoldenRecord.from_json(_record_path(Path(golden_dir), name).read_text())


def config_for_record(record: GoldenRecord) -> CoSimConfig:
    """Rebuild the runnable config a record was captured from."""
    return config_from_dict(record.config)
