"""The batched mission engine: N lockstep missions per process.

Each lane of a batch is a full, unmodified :class:`CoSimulation` — SoC,
bridge, transport, app, observability and synchronizer all run the exact
serial code per lane.  What the engine vectorizes is the environment
side, which dominates serial wall time: per-frame flight control,
dynamics, course projection and camera rasterization execute once per
*batch* over ``(K, ...)`` arrays (:mod:`repro.batch.kernels`) instead of
once per mission.

One engine round advances every active lane by one synchronization step:

1. **Prescan** — peek at each lane's pending SoC packets.  Count camera
   requests, note the last velocity target; any packet the kernels do
   not model aborts to the serial runner (:class:`BatchIneligible`).
2. **Pre-render** — rasterize the camera frames all requesting lanes are
   about to be served, in one batched pass from pre-advance state, and
   queue the finished RPC response dicts.  Texture noise comes from each
   lane's own camera RNG in serial draw order.  Lanes with a
   :class:`~repro.batch.infer.BatchedCnnPerception` are primed here with
   one whole-batch DNN forward pass.
3. **Pre-apply targets** — the prescanned velocity targets update the
   batch controller arrays now, because serially they are dispatched
   *before* the frame advance.  (The per-lane controller objects are
   updated by the real dispatch in phase 5, keeping RPC/packet counts
   serial-identical.)
4. **Advance** — the batched kernels run ``frames_per_sync`` frames over
   the gathered active working set, then scatter back and write each
   lane's scalar state into its simulator objects.
5. **Step** — each lane's synchronizer executes its unmodified
   ``step()``: dispatch consumes the queued camera responses, the
   environment-advance RPC consumes the token for work already done, and
   the SoC runs its cycle window.  Finished lanes (mission complete,
   watchdog, or ``max_sim_time``) shut down and collect exactly as
   :meth:`CoSimulation.run` would.

Ragged termination is the active-lane set shrinking round by round.

Bit-exactness: lanes using the default behavioural perception produce
``MissionResult`` payloads bit-identical to :func:`run_mission` — same
trajectory floats, same packet/byte counters, same signatures — so
batched and serial runs share sweep-cache entries.  The single tolerance
site (batched CNN GEMM) is documented in :mod:`repro.batch.infer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.app.perception import Perception
from repro.batch import kernels
from repro.batch.eligibility import BatchIneligible, batch_eligible, batch_group_key
from repro.batch.infer import BatchedCnnPerception
from repro.core.config import CoSimConfig
from repro.core.cosim import CoSimulation, MissionResult, run_mission
from repro.core.packets import PacketType
from repro.env.camera import encode_image_u8
from repro.env.geometry import angle_difference
from repro.env.physics import CollisionEvent
from repro.env.simulator import TrajectorySample
from repro.errors import TransportError, WatchdogError


@dataclass
class _Lane:
    """One mission of the batch, wrapping its serial co-simulation."""

    index: int
    cosim: CoSimulation
    perception: Perception | None
    result: MissionResult | None = None
    failure: str | None = None
    #: Camera responses pre-rendered for this round, FIFO for dispatch.
    camera_queue: list[dict[str, Any]] = field(default_factory=list)
    pending_camera_requests: int = 0
    #: Set before the lane's synchronizer steps; consumed by the
    #: environment-advance RPC shim (phase 4 already did the work).
    advance_token: bool = False


class BatchEngine:
    """Lockstep execution of one compatible group of missions."""

    def __init__(
        self,
        configs: Sequence[CoSimConfig],
        perceptions: Sequence[Perception | None] | None = None,
    ):
        if not configs:
            raise ValueError("BatchEngine needs at least one mission")
        if perceptions is None:
            perceptions = [None] * len(configs)
        if len(perceptions) != len(configs):
            raise ValueError("perceptions must parallel configs")
        keys = {batch_group_key(c) for c in configs}
        if len(keys) != 1:
            raise BatchIneligible("configs span multiple batch groups")
        for config in configs:  # repro: allow[PERF001] one-time screening, not the hot path
            ok, reason = batch_eligible(config)
            if not ok:
                raise BatchIneligible(reason)

        self.lanes = [
            _Lane(i, CoSimulation(config, perception=perception), perception)
            for i, (config, perception) in enumerate(zip(configs, perceptions))
        ]
        base_env = self.lanes[0].cosim.env
        self.world = base_env.world
        self.camera = base_env.camera  # pose-independent projection constants
        self.params = base_env.dynamics.params
        self.frame_dt = base_env.config.frame_dt
        self.frames_per_sync = configs[0].sync.frames_per_sync

        k = len(self.lanes)
        gains = base_env.controller.gains
        self.dyn = kernels.DynamicsLanes.zeros(k)
        self.pid_forward = kernels.PidLanes.zeros(gains.forward, k)
        self.pid_lateral = kernels.PidLanes.zeros(gains.lateral, k)
        self.pid_vertical = kernels.PidLanes.zeros(gains.vertical, k)
        self.pid_yaw = kernels.PidLanes.zeros(gains.yaw_rate, k)
        self.target_forward = np.zeros(k)
        self.target_lateral = np.zeros(k)
        self.target_yaw_rate = np.zeros(k)
        self.target_altitude = np.zeros(k)
        #: Dynamics clock / frame counter — uniform across lanes because
        #: every active lane advances every round (lockstep); finished
        #: lanes freeze at the values last written back.
        self.time = 0.0
        self.frame = 0
        arrays = self.world.centerline_arrays
        #: Per-segment left normals, for the signed-offset dot products.
        self._normals = np.column_stack([-arrays.units[:, 1], arrays.units[:, 0]])
        #: Cached per-lane ``(s, d, heading_error)`` of the *current* lane
        #: pose — serial ``course_state`` recomputes it from scratch for
        #: every camera response and every synchronizer log row, which was
        #: the largest per-lane cost left in the batched path.  The cache
        #: is refreshed from the (bit-exact) batch arrays at the end of
        #: every frame advance.
        self._course: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)] * k

        for lane in self.lanes:  # repro: allow[PERF001] one-time per-lane wiring
            st = lane.cosim.env.dynamics.state
            i = lane.index
            self.dyn.x[i] = st.x
            self.dyn.y[i] = st.y
            self.dyn.z[i] = st.z
            self.dyn.yaw[i] = st.yaw
            self._course[i] = lane.cosim.env.course_state()
            self._install_shims(lane)

    # ------------------------------------------------------------------
    def _install_shims(self, lane: _Lane) -> None:
        """Reroute the two env-advancing RPC handlers through the batch.

        Handler-level overrides keep :meth:`RpcServer.call` untouched, so
        marshalling, call counts and byte accounting stay serial-exact.
        """
        handlers = lane.cosim._rpc_server._handlers

        def get_camera_image() -> dict[str, Any]:
            if not lane.camera_queue:
                raise BatchIneligible("camera request arrived without a prescan")
            return lane.camera_queue.pop(0)

        def continue_for_frames(frames: int) -> int:
            if not lane.advance_token or int(frames) != self.frames_per_sync:
                raise BatchIneligible(
                    f"unexpected environment advance of {frames} frame(s)"
                )
            lane.advance_token = False
            return lane.cosim.env.frame

        def get_course_state() -> dict[str, float]:
            s, d, heading_error = self._course[lane.index]
            return {"s": s, "d": d, "heading_error": heading_error}

        handlers["get_camera_image"] = get_camera_image
        handlers["continue_for_frames"] = continue_for_frames
        handlers["get_course_state"] = get_course_state

    # ------------------------------------------------------------------
    def run(self) -> list[MissionResult]:
        """Fly every lane to completion; results in lane order."""
        for lane in self.lanes:  # repro: allow[PERF001] per-lane protocol setup
            lane.cosim.synchronizer.configure()
            lane.cosim.rpc.takeoff()
            target = lane.cosim.env.controller.target
            i = lane.index
            self.target_forward[i] = target.v_forward
            self.target_lateral[i] = target.v_lateral
            self.target_yaw_rate[i] = target.yaw_rate
            self.target_altitude[i] = target.altitude
        while True:  # repro: allow[PERF001] round axis, not the batch axis
            active = [lane for lane in self.lanes if lane.result is None]
            if not active:
                break
            self._round(active)
        return [lane.result for lane in self.lanes if lane.result is not None]

    # ------------------------------------------------------------------
    def _round(self, active: list[_Lane]) -> None:
        max_requests = self._prescan(active)
        if max_requests:
            self._pre_render(active, max_requests)
        self._advance(active)
        self._step_lanes(active)

    # -- phase 1: prescan ----------------------------------------------
    def _prescan(self, active: list[_Lane]) -> int:
        max_requests = 0
        for lane in active:  # repro: allow[PERF001] per-lane packet inspection
            requests = 0
            target = None
            for packet in lane.cosim.synchronizer._pending_rtl:  # repro: allow[PERF001] packet axis
                if packet.ptype == PacketType.CAMERA_REQ:
                    requests += 1
                elif packet.ptype == PacketType.TARGET_CMD:
                    target = packet.values
                else:
                    raise BatchIneligible(
                        f"unvectorized packet from SoC: {packet.ptype.name}"
                    )
            lane.pending_camera_requests = requests
            max_requests = max(max_requests, requests)
            if target is not None:
                # Serially this target is dispatched before the frame
                # advance; mirror that on the batch arrays.  (JSON
                # marshalling round-trips floats exactly.)
                i = lane.index
                self.target_forward[i] = float(target[0])
                self.target_lateral[i] = float(target[1])
                self.target_yaw_rate[i] = float(target[2])
                self.target_altitude[i] = float(target[3])
        return max_requests

    # -- phase 2: batched camera pre-render ----------------------------
    def _pre_render(self, active: list[_Lane], max_requests: int) -> None:
        requesting = [lane for lane in active if lane.pending_camera_requests > 0]
        noise_sigma = self.camera.params.texture_noise
        metadata: dict[int, tuple[float, float, float]] = {}
        cnn_items: list[tuple[BatchedCnnPerception, bytes, int, int]] = []
        for lane in requesting:  # repro: allow[PERF001] per-lane metadata lookup
            # Pre-advance ground-truth metadata: the cached course state
            # (post-advance of the previous round == pre-advance of this
            # one; the initial values were computed at engine start).
            _s, d, heading_error = self._course[lane.index]
            metadata[lane.index] = (lane.cosim.env.sim_time, heading_error, d)
            if isinstance(lane.perception, BatchedCnnPerception):
                lane.perception.begin_round()
        for j in range(max_requests):  # repro: allow[PERF001] request index, not the batch axis
            subset = [lane for lane in requesting if lane.pending_camera_requests > j]
            idx = np.array([lane.index for lane in subset])
            images = kernels.render_lanes(
                self.camera, self.world, self.dyn.x[idx], self.dyn.y[idx], self.dyn.yaw[idx]
            )
            for m, lane in enumerate(subset):  # repro: allow[PERF001] per-lane RNG + packaging
                image = images[m]
                camera = lane.cosim.env.camera
                if noise_sigma > 0:
                    image = image + camera._rng.normal(
                        0.0, noise_sigma, image.shape
                    ).astype(np.float32)
                image = np.clip(image, 0.0, 1.0)
                timestamp, heading_error, d = metadata[lane.index]
                response = {
                    "height": image.shape[0],
                    "width": image.shape[1],
                    "pixels": encode_image_u8(image),
                    "timestamp": timestamp,
                    "heading_error": heading_error,
                    "lateral_offset": d,
                    "half_width": self.world.half_width,
                }
                lane.camera_queue.append(response)
                if isinstance(lane.perception, BatchedCnnPerception):
                    cnn_items.append(
                        (
                            lane.perception,
                            response["pixels"],
                            image.shape[0],
                            image.shape[1],
                        )
                    )
        if cnn_items:
            BatchedCnnPerception.prime_batch(cnn_items)

    # -- phase 4: batched frame advance --------------------------------
    def _advance(self, active: list[_Lane]) -> None:
        k = len(active)
        p = self.params
        dt = self.frame_dt
        # With every lane active (the common case until lanes start
        # finishing) the gather would be the identity permutation, so the
        # working set IS the lane state — kernels mutate it in place and
        # the scatter is skipped too.
        all_active = k == len(self.lanes)
        if all_active:
            idx = None
            w = self.dyn
            pid_f = self.pid_forward
            pid_l = self.pid_lateral
            pid_v = self.pid_vertical
            pid_y = self.pid_yaw
            tgt_f = self.target_forward
            tgt_l = self.target_lateral
            tgt_yr = self.target_yaw_rate
            tgt_alt = self.target_altitude
        else:
            idx = np.array([lane.index for lane in active])
            w = self.dyn.gather(idx)
            pid_f = self.pid_forward.gather(idx)
            pid_l = self.pid_lateral.gather(idx)
            pid_v = self.pid_vertical.gather(idx)
            pid_y = self.pid_yaw.gather(idx)
            tgt_f = self.target_forward[idx]
            tgt_l = self.target_lateral[idx]
            tgt_yr = self.target_yaw_rate[idx]
            tgt_alt = self.target_altitude[idx]
        goal = self.world.goal_arclength

        for _ in range(self.frames_per_sync):  # repro: allow[PERF001] frame axis, not the batch axis
            cmd_f = pid_f.update(tgt_f - w.u, dt)
            cmd_l = pid_l.update(tgt_l - w.v, dt)
            cmd_v = pid_v.update(kernels.vertical_errors(tgt_alt, w.z, w.vz), dt)
            cmd_y = pid_y.update(tgt_yr - w.r, dt)
            kernels.applied_commands(w, self.time, cmd_f, cmd_l, cmd_v, cmd_y, dt, p)
            kernels.integrate_velocities(w, dt, p)
            speed = np.array(
                [
                    math.hypot(a, b)  # no bit-identical vector hypot
                    for a, b in zip(w.u.tolist(), w.v.tolist())
                ]
            )
            kernels.limit_speed(w, speed, p)
            new_x, new_y = kernels.integrate_pose(w, dt, p)

            wall_d = kernels.wall_distances(new_x, new_y, self.world)
            s_new, seg_idx, diff = kernels.project_lanes(
                np.column_stack([new_x, new_y]), self.world
            )
            d_new = np.empty(k)
            for m in range(k):  # repro: allow[PERF001] serial d uses a 2-vector BLAS dot
                d_new[m] = float(diff[m] @ self._normals[seg_idx[m]])
            colliding = (wall_d <= p.collision_radius) | (
                np.abs(d_new) >= self.world.half_width
            )

            if colliding.any():
                for m in np.nonzero(colliding)[0]:  # repro: allow[PERF001] collisions are rare events
                    lane = active[m]
                    if not self.time < w.recovery_until[m]:
                        # QuadrotorDynamics._handle_collision, per lane.
                        lane.cosim.env.dynamics.collisions.append(
                            CollisionEvent(
                                time=self.time,
                                x=float(new_x[m]),
                                y=float(new_y[m]),
                                speed=math.hypot(w.u[m], w.v[m]),
                            )
                        )
                        w.u[m] *= p.collision_speed_retention
                        w.v[m] = 0.0
                        w.r[m] = 0.0
                        w.ap_forward[m] = 0.0
                        w.ap_lateral[m] = 0.0
                        w.ap_vertical[m] = 0.0
                        w.ap_yaw[m] = 0.0
                        w.recovery_until[m] = self.time + p.recovery_time
                    # Held position: re-project it for this frame's sample.
                    s_held, d_held = self.world.course_coordinates(
                        np.array([w.x[m], w.y[m]])
                    )
                    s_new[m] = s_held
                    d_new[m] = d_held
                committed = ~colliding
                w.x = np.where(committed, new_x, w.x)
                w.y = np.where(committed, new_y, w.y)
            else:
                w.x = new_x
                w.y = new_y

            self.time += dt
            self.frame += 1
            sample_time = self.frame * self.frame_dt
            xs, ys, zs, yaws = w.x.tolist(), w.y.tolist(), w.z.tolist(), w.yaw.tolist()
            us, vs = w.u.tolist(), w.v.tolist()
            ss, ds = s_new.tolist(), d_new.tolist()
            for m, lane in enumerate(active):  # repro: allow[PERF001] per-lane trajectory/goal bookkeeping
                env = lane.cosim.env
                env.trajectory.append(
                    TrajectorySample(
                        time=sample_time,
                        x=xs[m],
                        y=ys[m],
                        z=zs[m],
                        yaw=yaws[m],
                        speed=math.hypot(us[m], vs[m]),
                        s=ss[m],
                        d=ds[m],
                    )
                )
                if env._goal_time is None and ss[m] >= goal:
                    env._goal_time = sample_time

        # Refresh the cached per-lane course state from the final frame's
        # (already serial-exact) batch values: s and d carry over; the
        # heading error repeats ``World.heading_error`` — clipped-arclength
        # segment lookup, then per-lane ``atan2`` (no bit-identical vector
        # form) against the committed yaw.
        centerline = self.world.centerline
        s_clipped = np.clip(s_new, 0.0, centerline.length)
        seg = np.minimum(
            np.searchsorted(centerline._cum, s_clipped, side="right") - 1,
            len(centerline._seg_lengths) - 1,
        )
        tangents = centerline._dirs[seg].tolist()
        yaw_list = w.yaw.tolist()
        s_list, d_list = s_new.tolist(), d_new.tolist()
        for m, lane in enumerate(active):  # repro: allow[PERF001] per-lane atan2
            tangent = tangents[m]
            self._course[lane.index] = (
                s_list[m],
                d_list[m],
                angle_difference(yaw_list[m], math.atan2(tangent[1], tangent[0])),
            )

        if not all_active:
            self.dyn.scatter(idx, w)
            self.pid_forward.scatter(idx, pid_f)
            self.pid_lateral.scatter(idx, pid_l)
            self.pid_vertical.scatter(idx, pid_v)
            self.pid_yaw.scatter(idx, pid_y)
        for m, lane in enumerate(active):  # repro: allow[PERF001] scalar write-back into lane objects
            dynamics = lane.cosim.env.dynamics
            st = dynamics.state
            st.x = float(w.x[m])
            st.y = float(w.y[m])
            st.z = float(w.z[m])
            st.yaw = float(w.yaw[m])
            st.u = float(w.u[m])
            st.v = float(w.v[m])
            st.vz = float(w.vz[m])
            st.r = float(w.r[m])
            applied = dynamics._applied
            applied.a_forward = float(w.ap_forward[m])
            applied.a_lateral = float(w.ap_lateral[m])
            applied.a_vertical = float(w.ap_vertical[m])
            applied.yaw_accel = float(w.ap_yaw[m])
            dynamics._recovery_until = float(w.recovery_until[m])
            dynamics.time = self.time
            lane.cosim.env.frame = self.frame

    # -- phase 5: per-lane synchronizer step ----------------------------
    def _step_lanes(self, active: list[_Lane]) -> None:
        for lane in active:  # repro: allow[PERF001] protocol/SoC work is inherently per lane
            lane.advance_token = True
            synchronizer = lane.cosim.synchronizer
            failure: str | None = None
            try:
                synchronizer.step()
            except WatchdogError:
                failure = "watchdog"
            except TransportError:
                failure = "link_timeout"
            if failure is None:
                if lane.camera_queue:
                    raise BatchIneligible("pre-rendered camera frames went unconsumed")
                if lane.advance_token:
                    raise BatchIneligible("synchronizer skipped the environment advance")
            if failure is not None:
                self._finish(lane, failure)
            elif lane.cosim.rpc.mission_complete():
                self._finish(lane, None)
            elif synchronizer.sim_time >= lane.cosim.config.max_sim_time:
                self._finish(lane, None)

    def _finish(self, lane: _Lane, failure: str | None) -> None:
        """Shut down and collect one lane, exactly as ``CoSimulation.run``."""
        try:
            lane.cosim.synchronizer.shutdown()
        except TransportError:
            failure = failure or "link_timeout"
        lane.result = lane.cosim._collect(failure)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def _chunks(indices: list[int], size: int | None) -> list[list[int]]:
    if size is None or size <= 0 or len(indices) <= size:
        return [indices]
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def run_batch(
    configs: Sequence[CoSimConfig],
    perceptions: Sequence[Perception | None] | None = None,
) -> list[MissionResult]:
    """Run one compatible group batched, falling back to serial.

    A mid-run :class:`BatchIneligible` (an unexpected packet on the link)
    discards the partial batch and re-runs every mission serially — the
    co-simulation is deterministic, so the rerun is the ground truth the
    batch would have had to match anyway.
    """
    if perceptions is None:
        perceptions = [None] * len(configs)
    try:
        return BatchEngine(configs, perceptions).run()
    except BatchIneligible:
        return [
            run_mission(config, perception=perception)
            for config, perception in zip(configs, perceptions)
        ]


def run_missions_batched(
    configs: Sequence[CoSimConfig],
    perceptions: Sequence[Perception | None] | None = None,
    batch_size: int | None = None,
) -> list[MissionResult]:
    """Run many missions, batching the eligible ones; results in order.

    Ineligible configurations run serially via :func:`run_mission`;
    eligible ones are grouped by :func:`batch_group_key` and executed in
    lockstep (``batch_size`` caps lanes per engine; ``None`` = one engine
    per group).  A group of one still goes through the batched engine —
    batch-of-1 equals serial is the engine's base correctness invariant.
    """
    if perceptions is None:
        perceptions = [None] * len(configs)
    if len(perceptions) != len(configs):
        raise ValueError("perceptions must parallel configs")
    results: list[MissionResult | None] = [None] * len(configs)
    groups: dict[str, list[int]] = {}
    for i, config in enumerate(configs):  # repro: allow[PERF001] grouping pass, not the hot path
        eligible, _reason = batch_eligible(config)
        if eligible:
            groups.setdefault(batch_group_key(config), []).append(i)
        else:
            results[i] = run_mission(config, perception=perceptions[i])
    for indices in groups.values():  # repro: allow[PERF001] group dispatch, not the hot path
        for chunk in _chunks(indices, batch_size):  # repro: allow[PERF001] chunk dispatch
            chunk_results = run_batch(
                [configs[i] for i in chunk], [perceptions[i] for i in chunk]
            )
            for i, result in zip(chunk, chunk_results):  # repro: allow[PERF001] result scatter
                results[i] = result
    return [result for result in results if result is not None]
