"""Loop-free numpy kernels for the batched mission engine.

Every function here advances *all* lanes of a mission batch with one
vectorized expression per arithmetic step — there are no Python-level
loops over the batch axis in this module (lint rule PERF001 enforces
that for the whole ``repro.batch`` package).

Bit-exactness contract
----------------------
Each kernel replicates the serial arithmetic of its counterpart —
:mod:`repro.env.physics`, :mod:`repro.env.flightctl`,
:mod:`repro.env.geometry`, :mod:`repro.env.camera` — operation for
operation, in the same order, so a lane of the batch produces bit-for-bit
the floats the serial simulator produces.  This relies on elementwise
numpy ufuncs (``np.cos``/``np.sin``/``np.sqrt``/``np.fmod``, arithmetic,
compare/select) computing the same IEEE-754 result as the scalar
``math.*`` / Python-float expression; that holds on this code path and is
pinned by the batched-vs-serial oracle.  The operations that do *not*
vectorize bit-identically (``math.hypot``, ``math.atan2``, the 2-vector
BLAS dot in :meth:`Polyline.project <repro.env.geometry.Polyline.project>`)
stay as per-lane scalar loops in :mod:`repro.batch.engine`, each marked
with an explicit PERF001 waiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.camera import FpvCamera
from repro.env.physics import QuadrotorParams
from repro.env.worlds import World

_EPS = 1e-12  # mirrors repro.env.geometry._EPS


def wrap_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.env.geometry.wrap_angle` — wrap to (-pi, pi].

    ``np.fmod`` matches ``math.fmod`` bit-for-bit (both defer to the C
    library ``fmod``), and ``np.pi == math.pi``.
    """
    wrapped = np.fmod(theta + np.pi, 2.0 * np.pi)
    wrapped = np.where(wrapped <= 0.0, wrapped + 2.0 * np.pi, wrapped)
    return wrapped - np.pi


# ----------------------------------------------------------------------
# Flight control (repro.env.flightctl)
# ----------------------------------------------------------------------
@dataclass
class PidLanes:
    """One scalar :class:`~repro.env.flightctl.Pid` channel across K lanes."""

    kp: float
    ki: float
    kd: float
    integral_limit: float
    output_limit: float
    integral: np.ndarray  # (K,)
    last_error: np.ndarray  # (K,); 0.0 until has_last
    has_last: np.ndarray  # (K,) bool

    @staticmethod
    def zeros(gains, k: int) -> "PidLanes":
        """Fresh channel state for ``k`` lanes (matches ``Pid.__init__``)."""
        return PidLanes(
            kp=gains.kp,
            ki=gains.ki,
            kd=gains.kd,
            integral_limit=gains.integral_limit,
            output_limit=gains.output_limit,
            integral=np.zeros(k),
            last_error=np.zeros(k),
            has_last=np.zeros(k, dtype=bool),
        )

    def update(self, error: np.ndarray, dt: float) -> np.ndarray:
        """Vectorized ``Pid.update``: same clamp/derivative/output order.

        ``last_error`` is initialized to 0.0, so the masked-out derivative
        branch divides finite numbers and ``np.where`` discards it —
        exactly the value the serial ``if`` would have skipped.
        """
        self.integral[:] = np.minimum(
            np.maximum(self.integral + error * dt, -self.integral_limit),
            self.integral_limit,
        )
        derivative = np.where(
            self.has_last, (error - self.last_error) / dt, 0.0
        )
        self.last_error[:] = error
        self.has_last[:] = True
        out = self.kp * error + self.ki * self.integral + self.kd * derivative
        return np.minimum(np.maximum(out, -self.output_limit), self.output_limit)

    def gather(self, idx: np.ndarray) -> "PidLanes":
        """Compact working copy for the active lanes ``idx``."""
        return PidLanes(
            kp=self.kp,
            ki=self.ki,
            kd=self.kd,
            integral_limit=self.integral_limit,
            output_limit=self.output_limit,
            integral=self.integral[idx],
            last_error=self.last_error[idx],
            has_last=self.has_last[idx],
        )

    def scatter(self, idx: np.ndarray, working: "PidLanes") -> None:
        """Write a working copy back into the full lane arrays."""
        self.integral[idx] = working.integral
        self.last_error[idx] = working.last_error
        self.has_last[idx] = working.has_last


def vertical_errors(altitude: np.ndarray, z: np.ndarray, vz: np.ndarray) -> np.ndarray:
    """The altitude-hold error term of ``SimpleFlightController.update``."""
    return np.minimum(np.maximum(altitude - z, -1.0), 1.0) * 1.5 - vz


# ----------------------------------------------------------------------
# Quadrotor dynamics (repro.env.physics)
# ----------------------------------------------------------------------
@dataclass
class DynamicsLanes:
    """Kinematic + actuator state of K lanes (``QuadrotorDynamics``)."""

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    yaw: np.ndarray
    u: np.ndarray
    v: np.ndarray
    vz: np.ndarray
    r: np.ndarray
    ap_forward: np.ndarray  # first-order actuator state (_applied)
    ap_lateral: np.ndarray
    ap_vertical: np.ndarray
    ap_yaw: np.ndarray
    recovery_until: np.ndarray

    _FIELDS = (
        "x", "y", "z", "yaw", "u", "v", "vz", "r",
        "ap_forward", "ap_lateral", "ap_vertical", "ap_yaw", "recovery_until",
    )

    @staticmethod
    def zeros(k: int) -> "DynamicsLanes":
        lanes = DynamicsLanes(*(np.zeros(k) for _ in DynamicsLanes._FIELDS))
        lanes.recovery_until[:] = -1.0  # QuadrotorDynamics._recovery_until
        return lanes

    def gather(self, idx: np.ndarray) -> "DynamicsLanes":
        return DynamicsLanes(
            *(getattr(self, name)[idx] for name in DynamicsLanes._FIELDS)
        )

    def scatter(self, idx: np.ndarray, working: "DynamicsLanes") -> None:
        self.x[idx] = working.x
        self.y[idx] = working.y
        self.z[idx] = working.z
        self.yaw[idx] = working.yaw
        self.u[idx] = working.u
        self.v[idx] = working.v
        self.vz[idx] = working.vz
        self.r[idx] = working.r
        self.ap_forward[idx] = working.ap_forward
        self.ap_lateral[idx] = working.ap_lateral
        self.ap_vertical[idx] = working.ap_vertical
        self.ap_yaw[idx] = working.ap_yaw
        self.recovery_until[idx] = working.recovery_until


def applied_commands(
    lanes: DynamicsLanes,
    time: float,
    cmd_forward: np.ndarray,
    cmd_lateral: np.ndarray,
    cmd_vertical: np.ndarray,
    cmd_yaw: np.ndarray,
    dt: float,
    p: QuadrotorParams,
) -> None:
    """Recovery override + clamp + first-order actuator lag, in place.

    Mirrors the first half of ``QuadrotorDynamics.step``: lanes still in
    post-collision recovery ignore the controller and brake to hover.
    """
    recovering = time < lanes.recovery_until
    denom = max(p.recovery_time * 0.5, dt)
    cmd_forward = np.where(recovering, -lanes.u / denom, cmd_forward)
    cmd_lateral = np.where(recovering, -lanes.v / denom, cmd_lateral)
    cmd_vertical = np.where(recovering, -lanes.vz / denom, cmd_vertical)
    cmd_yaw = np.where(recovering, -lanes.r / denom, cmd_yaw)

    cmd_forward = np.minimum(np.maximum(cmd_forward, -p.max_linear_accel), p.max_linear_accel)
    cmd_lateral = np.minimum(np.maximum(cmd_lateral, -p.max_linear_accel), p.max_linear_accel)
    cmd_vertical = np.minimum(np.maximum(cmd_vertical, -p.max_vertical_accel), p.max_vertical_accel)
    cmd_yaw = np.minimum(np.maximum(cmd_yaw, -p.max_yaw_accel), p.max_yaw_accel)

    alpha = dt / (p.actuator_tau + dt)
    lanes.ap_forward += alpha * (cmd_forward - lanes.ap_forward)
    lanes.ap_lateral += alpha * (cmd_lateral - lanes.ap_lateral)
    lanes.ap_vertical += alpha * (cmd_vertical - lanes.ap_vertical)
    lanes.ap_yaw += alpha * (cmd_yaw - lanes.ap_yaw)


def integrate_velocities(lanes: DynamicsLanes, dt: float, p: QuadrotorParams) -> None:
    """Body-frame velocity integration with drag, in place."""
    lanes.u += (lanes.ap_forward - p.linear_drag * lanes.u) * dt
    lanes.v += (lanes.ap_lateral - p.linear_drag * lanes.v) * dt
    lanes.vz += (lanes.ap_vertical - p.linear_drag * lanes.vz) * dt
    lanes.r += (lanes.ap_yaw - p.yaw_drag * lanes.r) * dt


def limit_speed(lanes: DynamicsLanes, speed: np.ndarray, p: QuadrotorParams) -> None:
    """Clamp planar speed to ``max_speed``, in place.

    ``speed`` is the per-lane ``math.hypot(u, v)`` (computed by the engine;
    ``np.hypot`` is not bit-identical).  Non-exceeding lanes multiply by
    exactly 1.0 — a bitwise identity — so only the lanes the serial code
    would have scaled change.
    """
    exceeding = speed > p.max_speed
    scale = np.where(
        exceeding, p.max_speed / np.where(exceeding, speed, 1.0), 1.0
    )
    lanes.u *= scale
    lanes.v *= scale


def integrate_pose(
    lanes: DynamicsLanes, dt: float, p: QuadrotorParams
) -> tuple[np.ndarray, np.ndarray]:
    """Yaw-rate clamp, yaw wrap, and position integration.

    Returns the *candidate* ``(new_x, new_y)`` — the engine applies the
    collision test before committing them (``z`` commits unconditionally,
    as in serial).
    """
    lanes.r = np.minimum(np.maximum(lanes.r, -p.max_yaw_rate), p.max_yaw_rate)
    lanes.yaw = wrap_angles(lanes.yaw + lanes.r * dt)
    c = np.cos(lanes.yaw)
    s = np.sin(lanes.yaw)
    new_x = lanes.x + (lanes.u * c - lanes.v * s) * dt
    new_y = lanes.y + (lanes.u * s + lanes.v * c) * dt
    lanes.z += lanes.vz * dt
    return new_x, new_y


# ----------------------------------------------------------------------
# World geometry (repro.env.geometry / repro.env.worlds)
# ----------------------------------------------------------------------
def wall_distances(px_: np.ndarray, py_: np.ndarray, world: World) -> np.ndarray:
    """Per-lane distance to the nearest wall segment.

    Row ``k`` replicates ``SegmentSoup.min_distance`` exactly: identical
    elementwise pairings, then ``sqrt(min(...))``.
    """
    walls = world.walls
    ax, ay = walls._ax, walls._ay
    dx, dy = walls._dx, walls._dy
    rx = px_[:, None] - ax[None, :]
    ry = py_[:, None] - ay[None, :]
    denom = dx * dx + dy * dy
    denom = np.where(denom < _EPS, 1.0, denom)
    t = np.clip((rx * dx[None, :] + ry * dy[None, :]) / denom[None, :], 0.0, 1.0)
    cx = rx - t * dx[None, :]
    cy = ry - t * dy[None, :]
    return np.sqrt(np.min(cx * cx + cy * cy, axis=1))


def project_lanes(
    points: np.ndarray, world: World
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched ``Polyline.project`` over (K, 2) ``points``.

    Returns ``(s, idx, diff)``: arclength per lane, the argmin segment
    index, and the ``point - closest`` residual rows.  The signed lateral
    offset ``d`` is *not* computed here — serial ``project`` forms it with
    a 2-vector BLAS dot whose rounding differs from any expanded sum, so
    the engine finishes it with the identical per-lane ``diff @ normal``.
    """
    arrays = world.centerline_arrays
    starts, lens, units = arrays.starts, arrays.lens, arrays.units
    sx, sy = starts[:, 0], starts[:, 1]
    ux, uy = units[:, 0], units[:, 1]
    px, py = points[:, 0], points[:, 1]
    # Coordinates kept in separate contiguous (K, S) planes: a 2-element
    # ``.sum(axis=2)`` is the ordered add ``a + b``, so every pairing
    # below restates the interleaved form bit-for-bit.
    relx = px[:, None] - sx[None, :]
    rely = py[:, None] - sy[None, :]
    t = relx * ux[None, :] + rely * uy[None, :]
    t = np.clip(t, 0.0, lens[None, :])
    diffx = px[:, None] - (sx[None, :] + t * ux[None, :])
    diffy = py[:, None] - (sy[None, :] + t * uy[None, :])
    d2 = diffx * diffx + diffy * diffy
    idx = np.argmin(d2, axis=1)
    rows = np.arange(points.shape[0])
    s = world.centerline._cum[idx] + t[rows, idx]
    return s, idx, np.column_stack([diffx[rows, idx], diffy[rows, idx]])


#: Lanes per cast block.  The (lanes, W, S) intermediate planes are the
#: whole cost of the ray solve; two lanes' worth (~250 KB at W=48,
#: S=322) stays cache-resident, while the full 16-lane batch spills to
#: DRAM and measures >2x slower.
_CAST_LANE_CHUNK = 2


def cast_rays_lanes(
    origins_x: np.ndarray,
    origins_y: np.ndarray,
    angles: np.ndarray,
    world: World,
    max_range: float,
) -> np.ndarray:
    """Batched ``SegmentSoup.cast_rays``: (K,) origins x (K, W) angles.

    Each (lane, ray, segment) scalar pairing matches the serial solve, so
    every returned distance is bit-identical.  Lanes are processed in
    cache-sized blocks; each lane's arithmetic is independent, so the
    blocking cannot change any bit.
    """
    n_lanes = origins_x.shape[0]
    if n_lanes <= _CAST_LANE_CHUNK:
        return _cast_rays_block(origins_x, origins_y, angles, world, max_range)
    out = np.empty_like(angles)
    for lo in range(0, n_lanes, _CAST_LANE_CHUNK):  # repro: allow[PERF001] fixed cache-block loop
        hi = min(lo + _CAST_LANE_CHUNK, n_lanes)
        out[lo:hi] = _cast_rays_block(
            origins_x[lo:hi], origins_y[lo:hi], angles[lo:hi], world, max_range
        )
    return out


def _cast_rays_block(
    origins_x: np.ndarray,
    origins_y: np.ndarray,
    angles: np.ndarray,
    world: World,
    max_range: float,
) -> np.ndarray:
    """One cache-sized block of the batched ray solve."""
    walls = world.walls
    ax, ay = walls._ax, walls._ay
    dx, dy = walls._dx, walls._dy
    rdx = np.cos(angles)[:, :, None]  # (K, W, 1)
    rdy = np.sin(angles)[:, :, None]
    sx = ax[None, None, :] - origins_x[:, None, None]  # (K, 1, S)
    sy = ay[None, None, :] - origins_y[:, None, None]
    # The (K, W, S) planes dominate this kernel's cost, so the serial
    # expressions are restated as in-place updates over four reusable
    # buffers — every elementwise pairing (and result bit) is unchanged.
    denom = rdx * dy[None, None, :]
    t = rdy * dx[None, None, :]
    denom -= t
    safe = np.abs(denom) > _EPS
    denom[~safe] = 1.0  # np.where(safe, denom, 1.0)
    t_num = sx * dy[None, None, :] - sy * dx[None, None, :]  # (K, 1, S)
    np.divide(t_num, denom, out=t)
    u = sx * rdy
    scratch = sy * rdx
    u -= scratch
    u /= denom
    valid = safe
    valid &= t >= 0.0
    valid &= u >= 0.0
    valid &= u <= 1.0
    np.logical_not(valid, out=valid)
    t[valid] = max_range  # np.where(valid, t, max_range)
    return np.minimum(t.min(axis=2), max_range)


# ----------------------------------------------------------------------
# FPV camera (repro.env.camera)
# ----------------------------------------------------------------------
def render_lanes(
    camera: FpvCamera,
    world: World,
    x: np.ndarray,
    y: np.ndarray,
    yaw: np.ndarray,
) -> np.ndarray:
    """Batched noise-free ``FpvCamera.render`` for K poses → (K, H, W).

    ``camera`` supplies the (shared, pose-independent) projection
    constants; per-lane texture noise is added by the engine afterwards,
    drawn from each lane's own camera RNG in serial order.
    """
    p = camera.params
    angles = yaw[:, None] + camera._col_angles[None, :]  # (K, W)
    depths = cast_rays_lanes(x, y, angles, world, p.max_depth)
    depths = np.maximum(depths, 0.2)
    perp = depths * camera._cos_col[None, :]
    perp = np.maximum(perp, 0.2)

    horizon = (p.height - 1) / 2.0
    wall_top = horizon - (p.wall_height - p.camera_height) * camera._focal / perp
    wall_bottom = horizon + p.camera_height * camera._focal / perp

    image = np.zeros((x.shape[0], p.height, p.width), dtype=np.float32)
    rows = camera._rows_f[None, :, :]  # (1, H, 1)
    in_wall = (rows >= wall_top[:, None, :]) & (rows < wall_bottom[:, None, :])
    shade = 0.75 / (1.0 + 0.10 * depths)
    image += in_wall * shade[:, None, :]
    image += (rows < wall_top[:, None, :]) * 0.08

    below = rows > wall_bottom[:, None, :]
    if np.any(below):
        cos_a = np.cos(angles)[:, None, :]  # (K, 1, W)
        sin_a = np.sin(angles)[:, None, :]
        gx = x[:, None, None] + camera._ground_dist[None, :, :] * cos_a
        gy = y[:, None, None] + camera._ground_dist[None, :, :] * sin_a
        offsets = floor_offsets(world, gx[below], gy[below])
        floor_shade = np.full(offsets.shape, 0.22, dtype=np.float32)
        floor_shade[np.abs(offsets) <= p.trail_half_width] = 0.95
        image[below] = floor_shade
    return image


#: Candidate segments the float32 prefilter keeps per floor point.
#: Six covers the exact minimum plus every same-endpoint near-tie even on
#: worlds with sub-meter segments.
_FLOOR_CANDIDATES = 6

#: Index offsets of the candidate window around the float32-nearest
#: segment (len == _FLOOR_CANDIDATES).
_WINDOW_OFFSETS = np.arange(_FLOOR_CANDIDATES) - _FLOOR_CANDIDATES // 2

#: Pixel rows per prefilter block; (chunk, S) float32 planes stay in L2.
_FLOOR_CHUNK = 256


def floor_offsets(world: World, px_: np.ndarray, py_: np.ndarray) -> np.ndarray:
    """Signed centerline offsets of flat ``(P,)`` floor points.

    Bit-exact replacement for
    :meth:`FpvCamera._centerline_offsets <repro.env.camera.FpvCamera>` —
    the batched renderer's dominant cost.  Large inputs take a two-stage
    path: a cheap float32 distance pass (two skinny sgemms plus a few
    elementwise planes) finds each point's approximately nearest segment,
    and a window of :data:`_FLOOR_CANDIDATES` consecutive segments around
    it — near-ties come from neighbours sharing an endpoint — is refined
    with the exact serial float64 arithmetic.  A conservative error bound
    proves, per point, that every excluded segment is strictly farther
    than the refined minimum — any point that cannot be proven falls the
    whole call back to :func:`_floor_offsets_exact`, so the prefilter can
    only ever cost time, never exactness.
    """
    arrays = world.centerline_arrays
    n_seg = arrays.starts.shape[0]
    n_pts = px_.shape[0]
    if n_seg <= _FLOOR_CANDIDATES + 2 or n_pts * n_seg <= 20000:
        return _floor_offsets_exact(world, px_, py_)

    sx, sy = arrays.starts[:, 0], arrays.starts[:, 1]
    ux, uy = arrays.units[:, 0], arrays.units[:, 1]
    lens = arrays.lens

    # -- float32 prefilter ---------------------------------------------
    # One (P, 3) point matrix against two (3, S) segment matrices; the
    # affine terms (segment self-projection, |s|^2, the -2 factor) are
    # folded into the gemm operands so no whole-plane pass re-applies
    # them.  |p|^2 is a per-row constant — it shifts neither the row
    # argmin nor which segment attains the excluded minimum, so it is
    # added back in float64 on the extracted threshold only.
    A = np.empty((n_pts, 3), dtype=np.float32)
    A[:, 0] = px_
    A[:, 1] = py_
    A[:, 2] = 1.0
    B_q = np.empty((3, n_seg), dtype=np.float32)
    B_q[0] = ux
    B_q[1] = uy
    B_q[2] = -(sx * ux + sy * uy)  # segment self-projections
    B_d = np.empty((3, n_seg), dtype=np.float32)
    B_d[0] = -2.0 * sx
    B_d[1] = -2.0 * sy
    B_d[2] = sx * sx + sy * sy
    lens32 = lens.astype(np.float32)[None, :]

    nearest = np.empty(n_pts, dtype=np.intp)
    thresh = np.empty(n_pts, dtype=np.float32)
    q = np.empty((_FLOOR_CHUNK, n_seg), dtype=np.float32)
    d2_32 = np.empty((_FLOOR_CHUNK, n_seg), dtype=np.float32)
    t32 = np.empty((_FLOOR_CHUNK, n_seg), dtype=np.float32)
    chunk_rows = np.arange(_FLOOR_CHUNK)[:, None]
    # Cache blocking over the *pixel* axis (not the lane axis): every
    # pass below touches the same ~(chunk, S) float32 block, which stays
    # resident in L2 instead of streaming multi-megabyte planes.
    for lo in range(0, n_pts, _FLOOR_CHUNK):  # repro: allow[PERF001] fixed cache-block loop
        hi = min(lo + _FLOOR_CHUNK, n_pts)
        m = hi - lo
        qm, d2m, tm = q[:m], d2_32[:m], t32[:m]
        np.matmul(A[lo:hi], B_q, out=qm)  # projections onto segments
        np.matmul(A[lo:hi], B_d, out=d2m)
        np.minimum(qm, lens32, out=tm)
        np.maximum(tm, 0.0, out=tm)
        # |p-(s+t u)|^2 - |p|^2 = -2 p.s + |s|^2 - t (2 q - t)
        qm += qm
        qm -= tm
        qm *= tm  # q := t (2 q - t)
        d2m -= qm
        nr = d2m.argmin(axis=1)
        nearest[lo:hi] = nr
        # Candidate window: the float32-nearest segment plus its index
        # neighbours, clipped at the course ends (duplicates are harmless
        # — argmin keeps the first, i.e. lowest-index, occurrence).
        # Minimum float32 distance over the *excluded* segments is a
        # lower bound (minus the error margin below) on their exact
        # distances; the scatter masks candidates in place.
        d2m[chunk_rows[:m], np.clip(nr[:, None] + _WINDOW_OFFSETS[None, :], 0, n_seg - 1)] = (
            np.float32(np.inf)
        )
        thresh[lo:hi] = d2m.min(axis=1)

    point_rows = np.arange(n_pts)
    # Window indices ascend, so the refined argmin tie-breaks like the
    # serial global one.
    cand = np.clip(nearest[:, None] + _WINDOW_OFFSETS[None, :], 0, n_seg - 1)
    p2 = px_ * px_ + py_ * py_  # restore the dropped |p|^2, in float64
    thresh = thresh.astype(np.float64) + p2

    # -- exact serial arithmetic on the candidates ---------------------
    c_sx, c_sy = sx[cand], sy[cand]  # (P, C)
    c_ux, c_uy = ux[cand], uy[cand]
    relx = px_[:, None] - c_sx
    rely = py_[:, None] - c_sy
    t = np.clip(relx * c_ux + rely * c_uy, 0.0, lens[cand])
    # Serial forms ``closest`` then ``point - closest``; keep that order.
    diffx = px_[:, None] - (c_sx + t * c_ux)
    diffy = py_[:, None] - (c_sy + t * c_uy)
    d2 = diffx * diffx + diffy * diffy
    best = np.argmin(d2, axis=1)

    # -- soundness guard -----------------------------------------------
    # Bound the float32 pass's absolute error by ~10 ulps at the squared
    # magnitude of the inputs, with a 6x safety factor.  The guard must
    # hold for every point, else the call reruns exactly.
    scale = max(
        float(np.abs(px_).max(initial=1.0)),
        float(np.abs(py_).max(initial=1.0)),
        float(np.abs(arrays.starts).max(initial=1.0)),
        float(lens.max(initial=1.0)),
    )
    margin = 64.0 * float(np.finfo(np.float32).eps) * (scale * scale + 1.0)
    if bool((d2[point_rows, best] >= thresh - margin).any()):
        return _floor_offsets_exact(world, px_, py_)

    idx = cand[point_rows, best]
    return (
        diffx[point_rows, best] * (-uy[idx]) + diffy[point_rows, best] * ux[idx]
    )


def _floor_offsets_exact(world: World, px_: np.ndarray, py_: np.ndarray) -> np.ndarray:
    """Split-coordinate restatement of the serial floor shader.

    Every ``(P, S)`` intermediate is a single coordinate plane instead of
    the stacked ``(P, S, 2)`` arrays, halving the memory traffic.
    Bit-exact with ``FpvCamera._centerline_offsets``: a ``.sum(axis=2)``
    over two elements is the plain ordered ``x + y`` these expressions
    write out, and every other operation pairs identically.
    """
    arrays = world.centerline_arrays
    sx, sy = arrays.starts[:, 0], arrays.starts[:, 1]
    ux, uy = arrays.units[:, 0], arrays.units[:, 1]
    relx = px_[:, None] - sx[None, :]  # (P, S)
    rely = py_[:, None] - sy[None, :]
    t = np.clip(relx * ux[None, :] + rely * uy[None, :], 0.0, arrays.lens[None, :])
    # Serial forms ``closest`` then ``point - closest``; keep that order.
    diffx = px_[:, None] - (sx[None, :] + t * ux[None, :])
    diffy = py_[:, None] - (sy[None, :] + t * uy[None, :])
    idx = np.argmin(diffx * diffx + diffy * diffy, axis=1)
    rows = np.arange(px_.shape[0])
    return diffx[rows, idx] * (-uy[idx]) + diffy[rows, idx] * ux[idx]
