"""Which missions may share a batch, and how they group.

The batched engine vectorizes the environment side of the co-simulation;
everything that crosses the RPC boundary (SoC, app, observability) runs
unchanged per lane.  That puts two kinds of constraints on batching:

* *Eligibility* — configurations whose environment the kernels model.
  The quadrotor + DNN-controller path is vectorized; MPC/SLAM/fusion
  controllers, the car vehicle, fault injection, background tenants and
  non-in-process transports fall back to the serial runner (bit-identical
  results either way, so the fallback is purely a throughput decision).
* *Grouping* — lanes advance in lockstep, so the world geometry and the
  synchronization schedule (frames per sync, frame rate) must agree
  across a group.  Seed, model, SoC, initial angle, target velocity and
  ``max_sim_time`` may all vary per lane; differing ``max_sim_time`` is
  what exercises ragged termination.
"""

from __future__ import annotations

import json

from repro.core.config import CoSimConfig


class BatchIneligible(Exception):
    """A lane needs something the batched engine does not vectorize.

    Raised during a batched run only for conditions that are invisible to
    the pre-run :func:`batch_eligible` screen (e.g. an unexpected packet
    type on the link); the group is then re-run serially.
    """


def batch_eligible(config: CoSimConfig) -> tuple[bool, str]:
    """``(eligible, reason)`` — may this mission run on the batched engine?"""
    if config.vehicle != "quadrotor":
        return False, f"vehicle {config.vehicle!r} is not vectorized"
    if config.controller != "dnn":
        return False, f"controller {config.controller!r} is not vectorized"
    if config.dynamic_runtime:
        return False, "dynamic runtime switches models mid-flight"
    if config.background is not None:
        return False, f"background workload {config.background!r}"
    if config.faults is not None:
        return False, "fault injection perturbs the per-lane link"
    if config.transport != "inprocess":
        return False, f"transport {config.transport!r} is not in-process"
    if config.world == "scenario":
        return False, "scenario-compiled worlds (obstacles) are not vectorized"
    if config.noise is not None:
        return False, "scenario sensor-noise profiles are not vectorized"
    if config.initial_lateral_offset != 0.0:
        return False, "off-center spawn is not vectorized"
    return True, ""


def batch_group_key(config: CoSimConfig) -> str:
    """Lockstep-compatibility key: lanes with equal keys may share a batch.

    The key covers exactly what the vectorized kernels share across the
    batch: the world (hence walls/centerline arrays), the synchronization
    schedule, and the vehicle model.
    """
    try:
        world_params = sorted(config.world_params.items())
        json.dumps(world_params)
    except TypeError:
        # Unhashable/unserializable world params: key on identity-free
        # repr so equal-looking configs still group, odd ones stay alone.
        world_params = repr(sorted(config.world_params.items(), key=repr))
    return json.dumps(
        {
            "world": config.world,
            "world_params": world_params,
            "vehicle": config.vehicle,
            "cycles_per_sync": config.sync.cycles_per_sync,
            "soc_frequency_hz": config.sync.soc_frequency_hz,
            "frame_rate_hz": config.sync.frame_rate_hz,
        },
        sort_keys=True,
        default=str,
    )
