"""Batched mission engine: vectorized lockstep execution of N missions.

Public surface:

* :func:`run_missions_batched` — run a list of configurations, batching
  the eligible ones (results bit-identical to serial for the default
  behavioural perception).
* :class:`BatchEngine` / :func:`run_batch` — one lockstep group.
* :func:`batch_eligible` / :func:`batch_group_key` — the screening the
  sweep runner and CLI use to decide what batches together.
* :class:`BatchedCnnPerception` — primable CNN perception whose forward
  passes are shared across the batch (the engine's one tolerance site).
"""

from repro.batch.eligibility import BatchIneligible, batch_eligible, batch_group_key
from repro.batch.engine import BatchEngine, run_batch, run_missions_batched
from repro.batch.infer import BatchedCnnPerception

__all__ = [
    "BatchEngine",
    "BatchIneligible",
    "BatchedCnnPerception",
    "batch_eligible",
    "batch_group_key",
    "run_batch",
    "run_missions_batched",
]
