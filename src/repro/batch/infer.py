"""Batched CNN perception: one forward pass for a whole mission batch.

:class:`BatchedCnnPerception` is a drop-in replacement for
:class:`repro.app.perception.CnnPerception`.  Standalone it behaves
identically — decode the packet, run ``model.predict_probs`` on a
single-image batch.  Under the batched engine, the engine *primes* every
lane's perception for the camera responses it just rendered: the decoded
frames of all lanes are stacked and pushed through ``predict_probs``
once, so the conv/GEMM work is amortized across the batch (im2col in
:mod:`repro.dnn.layers` batches natively over the leading axis).

Tolerance site (the only one in the batched engine): BLAS sgemm blocks
by output rows, so a row of a ``(K·P, C)`` matmul is not guaranteed
bit-identical to the same row of the ``(P, C)`` single-image call.
Probabilities agree to float32 roundoff (the batched-vs-serial oracle
pins rtol=1e-5/atol=1e-6); class predictions — what the controller
consumes — agree except on exact probability ties.  Mission runs that
must be bit-exact (everything the sweep cache stores) use the default
:class:`~repro.app.perception.BehavioralPerception`, which carries no
pixel-side GEMM and batches exactly.
"""

from __future__ import annotations

import numpy as np

from repro.app.perception import Perception, _check_camera_packet
from repro.core.packets import DataPacket
from repro.dnn.calibrated import TrailInference


def _decode(raw: bytes, height: int, width: int) -> np.ndarray:
    """The exact ``CnnPerception.infer_packet`` pixel decode."""
    return (
        np.frombuffer(raw, dtype=np.uint8)
        .reshape(1, 1, height, width)
        .astype(np.float32)
        / 255.0
    )


def _inference(angular_probs: np.ndarray, lateral_probs: np.ndarray) -> TrailInference:
    return TrailInference(
        angular_probs=angular_probs,
        lateral_probs=lateral_probs,
        angular_pred=int(angular_probs.argmax()),
        lateral_pred=int(lateral_probs.argmax()),
    )


class BatchedCnnPerception(Perception):
    """A trained TrailNet over pixels, primable with batched results."""

    def __init__(self, model):
        self.model = model
        self.model.eval()
        #: Primed results keyed by raw pixel payload (FIFO per payload).
        self._primed: dict[bytes, list[TrailInference]] = {}
        self.primed_hits = 0
        self.fallback_inferences = 0

    # -- engine-side API ------------------------------------------------
    def begin_round(self) -> None:
        """Drop stale primes (requests the app never consumed)."""
        self._primed.clear()

    def prime(self, raw: bytes, inference: TrailInference) -> None:
        """Store a precomputed inference for an upcoming packet."""
        self._primed.setdefault(raw, []).append(inference)

    @staticmethod
    def prime_batch(
        items: list[tuple["BatchedCnnPerception", bytes, int, int]],
    ) -> None:
        """One forward pass covering every (perception, frame) pair.

        ``items`` holds ``(perception, raw_pixels, height, width)`` per
        camera response about to be delivered.  All frames share one
        ``predict_probs`` call on the first perception's model when the
        models coincide; mixed models fall back to per-model sub-batches.
        """
        by_model: dict[int, list[tuple[BatchedCnnPerception, bytes, int, int]]] = {}
        for perception, raw, height, width in items:  # repro: allow[PERF001] per-frame grouping bookkeeping
            by_model.setdefault(id(perception.model), []).append(
                (perception, raw, height, width)
            )
        for group in by_model.values():  # repro: allow[PERF001] model axis, not the batch axis
            frames = np.concatenate(
                [_decode(raw, height, width) for _p, raw, height, width in group]
            )
            angular, lateral = group[0][0].model.predict_probs(frames)
            for i, (perception, raw, _h, _w) in enumerate(group):  # repro: allow[PERF001] per-frame prime delivery
                perception.prime(raw, _inference(angular[i], lateral[i]))

    # -- app-side API ---------------------------------------------------
    def infer_packet(self, packet: DataPacket) -> TrailInference:
        _check_camera_packet(packet)
        queue = self._primed.get(packet.raw)
        if queue:
            self.primed_hits += 1
            result = queue.pop(0)
            if not queue:
                del self._primed[packet.raw]
            return result
        # Serial path (also the behaviour outside the batched engine):
        # bit-identical to CnnPerception.
        self.fallback_inferences += 1
        height, width = int(packet.values[0]), int(packet.values[1])
        angular, lateral = self.model.predict_probs(
            _decode(packet.raw, height, width)
        )
        return _inference(angular[0], lateral[0])
