"""Job model and the persistent, crash-safe job store (``rose-jobq/1``).

A *job* is one submitted sweep: an ordered task list (name + config),
execution parameters, and a map of per-task completion records.  The
:class:`JobStore` is the service's write-ahead log — every state
transition appends one fsync'd JSONL record (the same append discipline
as the sweep journal, shared via
:func:`repro.sweep.journal.append_jsonl`), so a killed server replays
the store on boot and resumes every unfinished job exactly where it
stopped.  Results themselves never live here: the content-addressed
:class:`~repro.sweep.cache.ResultCache` is the artifact store, which is
what makes shard execution idempotent and work-stealing safe.

Replay semantics are **last-event-wins** per (job, task key): a stolen
task that is completed twice (once by a zombie worker, once by the
thief) converges to a single record — the final event's attribution —
and completion accounting stays exactly-once because records are a map
keyed by config key, not an event count.

Job identity is content-addressed like the sweep journal's
``sweep_id``: code fingerprint + ordered (name, config-key) list.
Submitting the same sweep twice therefore *deduplicates* onto the
existing job instead of re-running it — idempotent submission for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import CoSimConfig
from repro.core.manifest import config_from_dict, config_to_dict
from repro.errors import ServeError
from repro.sweep.journal import append_jsonl, read_jsonl, sweep_id
from repro.sweep.resilience import OUTCOME_STATES, SUCCESS_STATES

JOBQ_FORMAT = "rose-jobq/1"

#: Job lifecycle states.  ``queued`` and ``running`` are live;
#: ``done`` / ``failed`` / ``cancelled`` are terminal (``failed`` means
#: every task completed but at least one ended in a failure state).
JOB_STATES: tuple[str, ...] = ("queued", "running", "done", "failed", "cancelled")

TERMINAL_JOB_STATES: frozenset[str] = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobParams:
    """Execution knobs for one job (none of them enter result identity).

    ``shards`` is the intended parallel width: it sets the default claim
    slice (``ceil(tasks / shards)``) and how many shard workers the
    threaded host spins up.  The remaining knobs are passed through to
    each shard's supervised :class:`~repro.sweep.runner.SweepRunner`.
    """

    shards: int = 2
    slice_size: int | None = None
    workers: int = 1
    batch_size: int = 1
    task_timeout: float | None = None
    max_attempts: int = 3
    lease_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServeError(f"shards must be >= 1, got {self.shards}")
        if self.slice_size is not None and self.slice_size < 1:
            raise ServeError(f"slice_size must be >= 1, got {self.slice_size}")
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ServeError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_attempts < 1:
            raise ServeError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.lease_seconds <= 0:
            raise ServeError(f"lease_seconds must be > 0, got {self.lease_seconds}")

    def slice_for(self, task_count: int) -> int:
        """Tasks handed out per claim: explicit size, or an even shard cut."""
        if self.slice_size is not None:
            return self.slice_size
        return max(1, -(-task_count // self.shards))

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "slice_size": self.slice_size,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "task_timeout": self.task_timeout,
            "max_attempts": self.max_attempts,
            "lease_seconds": self.lease_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobParams":
        known = {f: payload[f] for f in cls.__dataclass_fields__ if f in payload}
        try:
            return cls(**known)
        except TypeError as exc:  # pragma: no cover - defensive
            raise ServeError(f"invalid job params: {exc}") from exc


@dataclass(frozen=True)
class TaskRecord:
    """One task's terminal state, with shard/owner attribution."""

    name: str
    key: str
    state: str
    attempts: int
    owner: str
    failure: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.state not in OUTCOME_STATES:
            raise ServeError(
                f"unknown outcome state {self.state!r}; "
                f"expected one of {sorted(OUTCOME_STATES)}"
            )

    @property
    def ok(self) -> bool:
        return self.state in SUCCESS_STATES

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "owner": self.owner,
        }
        if self.failure is not None:
            payload["failure"] = self.failure
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TaskRecord":
        return cls(
            name=str(payload["name"]),
            key=str(payload["key"]),
            state=str(payload["state"]),
            attempts=int(payload["attempts"]),
            owner=str(payload.get("owner", "")),
            failure=payload.get("failure"),
        )


def job_id_for(fingerprint: str, tasks: list[tuple[str, str]]) -> str:
    """Content identity of a job: fingerprint + ordered (name, key) list."""
    return sweep_id(fingerprint, tasks)[:16]


@dataclass
class Job:
    """One submitted sweep and everything the service knows about it."""

    job_id: str
    name: str
    tasks: list[tuple[str, CoSimConfig]]
    keys: list[str]
    params: JobParams
    state: str = "queued"
    records: dict[str, TaskRecord] = field(default_factory=dict)
    #: Monotonic clock stamps (operational only; never in result identity).
    submitted_at: float = 0.0
    finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_JOB_STATES

    def completed(self) -> int:
        return len(self.records)

    def counts(self) -> dict[str, int]:
        """Task accounting for status snapshots."""
        ok = sum(1 for record in self.records.values() if record.ok)
        return {
            "total": len(self.tasks),
            "completed": len(self.records),
            "ok": ok,
            "failed": len(self.records) - ok,
        }

    def owners(self) -> dict[str, int]:
        """Completed-task counts per shard worker (attribution summary)."""
        out: dict[str, int] = {}
        for key in self.keys:
            record = self.records.get(key)
            if record is not None:
                out[record.owner] = out.get(record.owner, 0) + 1
        return dict(sorted(out.items()))


class JobStore:
    """Append-only JSONL event log for the job queue (``rose-jobq/1``).

    Events (all fsync'd single-line appends):

    * ``submit``   — full job description (tasks carry their configs, so
      a restarted server can re-materialize and finish the sweep);
    * ``job_state`` — lifecycle transition;
    * ``task``     — one task completed (last-event-wins on replay);
    * ``lease`` / ``expire`` — operational trace of the shard lease /
      steal protocol (ignored by replay: leases never survive a crash —
      that is the point, an expired lease is how work gets stolen);
    * ``cancel``   — user-requested cancellation.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.appended = 0

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        append_jsonl(self.path, record)
        self.appended += 1

    def record_submit(self, job: Job) -> None:
        self._append(
            {
                "format": JOBQ_FORMAT,
                "event": "submit",
                "job": job.job_id,
                "name": job.name,
                "params": job.params.to_dict(),
                "tasks": [
                    {
                        "name": task_name,
                        "key": key,
                        "config": config_to_dict(config),
                    }
                    for (task_name, config), key in zip(job.tasks, job.keys)
                ],
            }
        )

    def record_job_state(self, job_id: str, state: str) -> None:
        self._append({"event": "job_state", "job": job_id, "state": state})

    def record_task(self, job_id: str, record: TaskRecord) -> None:
        self._append({"event": "task", "job": job_id, **record.to_dict()})

    def record_lease(
        self,
        job_id: str,
        claim_id: int,
        worker: str,
        keys: list[str],
        expires: float,
        stolen_from: str | None,
    ) -> None:
        self._append(
            {
                "event": "lease",
                "job": job_id,
                "claim": claim_id,
                "worker": worker,
                "keys": keys,
                "expires": expires,
                "stolen_from": stolen_from,
            }
        )

    def record_expire(
        self, job_id: str, claim_id: int, worker: str, keys: list[str]
    ) -> None:
        self._append(
            {
                "event": "expire",
                "job": job_id,
                "claim": claim_id,
                "worker": worker,
                "keys": keys,
            }
        )

    def record_cancel(self, job_id: str) -> None:
        self._append({"event": "cancel", "job": job_id})

    # ------------------------------------------------------------------
    def replay(self) -> dict[str, Job]:
        """Rebuild the job table from the log (last-event-wins).

        Leases are *not* restored: any claim that was in flight when the
        server died is implicitly expired, so its tasks sit in the
        pending pool and the next worker to ask for work steals them.
        Terminal states replay in event order, so a ``cancel`` followed
        by a requeue (``job_state: queued``) nets out to queued —
        strictly last-event-wins.
        """
        jobs: dict[str, Job] = {}
        for record in read_jsonl(self.path):
            event = record.get("event")
            job_id = str(record.get("job", ""))
            if event == "submit":
                try:
                    tasks_payload = record["tasks"]
                    tasks = [
                        (str(entry["name"]), config_from_dict(dict(entry["config"])))
                        for entry in tasks_payload
                    ]
                    keys = [str(entry["key"]) for entry in tasks_payload]
                    params = JobParams.from_dict(dict(record.get("params", {})))
                except (KeyError, TypeError, ValueError, ServeError):
                    continue  # damaged submit record: job unrecoverable
                jobs[job_id] = Job(
                    job_id=job_id,
                    name=str(record.get("name", job_id)),
                    tasks=tasks,
                    keys=keys,
                    params=params,
                )
            elif event == "job_state" and job_id in jobs:
                state = str(record.get("state", ""))
                if state in JOB_STATES:
                    jobs[job_id].state = state
            elif event == "task" and job_id in jobs:
                try:
                    task_record = TaskRecord.from_dict(record)
                except (KeyError, TypeError, ValueError, ServeError):
                    continue  # damaged record: that task recomputes
                jobs[job_id].records[task_record.key] = task_record
            elif event == "cancel" and job_id in jobs:
                jobs[job_id].state = "cancelled"
        # A job whose journal says "running" but whose records already
        # cover every task finished right at the crash boundary: settle
        # its terminal state now instead of waiting for a worker.
        for job in jobs.values():
            if job.terminal:
                continue
            if len(job.records) == len(job.tasks) and job.tasks:
                all_ok = all(record.ok for record in job.records.values())
                job.state = "done" if all_ok else "failed"
        return jobs
