"""The async job scheduler: leases, heartbeats, expiry, work-stealing.

The scheduler is the service's control plane.  It owns the job table
(journaled through the :class:`~repro.serve.jobs.JobStore`), hands out
*claims* — leased slices of a job's pending tasks — to shard workers,
and revokes claims whose owner stops heartbeating.  Execution itself
lives elsewhere (:mod:`repro.serve.workers`): the scheduler never runs a
mission, it only does deterministic accounting, which is why the whole
protocol can be driven by a :class:`~repro.serve.clock.FakeClock` in the
end-to-end harness.

The shard lease / steal protocol:

* ``lease(worker)`` pops up to one *slice* (``ceil(tasks/shards)`` by
  default) off a job's pending deque and grants it to the worker with a
  deadline of ``now + lease_seconds``;
* the worker heartbeats between tasks (``heartbeat``) and reports each
  terminal outcome (``complete``), which also renews the lease;
* ``tick(now)`` expires overdue claims: their unfinished tasks return to
  the *front* of the pending deque tagged with the dead owner, so the
  next ``lease`` call — typically from a surviving shard that drained
  its own slice — **steals** them;
* completions are recorded last-event-wins into ``Job.records`` (a map
  keyed by config key), so a stolen task double-executed during a lease
  race still completes exactly once — and double execution is harmless
  anyway, because results land in the content-addressed
  :class:`~repro.sweep.cache.ResultCache` under the same key.

Every mutation appends to the job store first-class, so a fresh
scheduler built over the same store replays to the same state
(:meth:`JobStore.replay` is last-event-wins; in-flight leases do not
survive — a restart is indistinguishable from every shard dying at
once, and the steal path picks up the pieces).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Union

from repro.core.config import CoSimConfig
from repro.errors import ServeError
from repro.obs.declarations import serve_registry
from repro.obs.metrics import MetricsRegistry
from repro.serve.clock import Clock, SystemClock
from repro.serve.jobs import Job, JobParams, JobStore, TaskRecord, job_id_for
from repro.sweep.fingerprint import code_fingerprint, config_key

#: What ``submit`` accepts: an ordered mapping or (name, config) pairs.
SubmitTasks = Union[
    Mapping[str, CoSimConfig], Iterable[tuple[str, CoSimConfig]]
]


@dataclass
class Claim:
    """One granted lease: a worker's exclusive slice of a job's tasks."""

    claim_id: int
    job_id: str
    worker: str
    indices: list[int]  # task indices still unfinished under this claim
    expires: float


@dataclass(frozen=True)
class Assignment:
    """What a worker gets back from ``lease``: tasks plus lease metadata."""

    job_id: str
    claim_id: int
    worker: str
    tasks: list[tuple[str, CoSimConfig]]
    keys: list[str]
    params: JobParams
    deadline: float
    #: Comma-joined prior owners when any of these tasks were stolen
    #: from an expired lease; ``None`` for first-hand work.
    stolen_from: str | None


class Scheduler:
    """Deterministic lease/steal accounting over a journaled job table."""

    def __init__(
        self,
        store: JobStore,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        fingerprint: str | None = None,
    ):
        self.store = store
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.registry = registry if registry is not None else serve_registry()
        self.fingerprint = fingerprint or code_fingerprint()
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._pending: dict[str, deque[int]] = {}
        self._index: dict[str, dict[str, int]] = {}
        self._claims: dict[int, Claim] = {}
        self._stolen_from: dict[str, dict[int, str]] = {}
        self._steals: dict[str, int] = {}
        self._next_claim = 1
        self._recover()

    # ------------------------------------------------------------------
    # Boot-time replay
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the job store: completed work stays done, leases die."""
        for job_id, job in self.store.replay().items():
            self._install(job)

    def _install(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        if job.job_id not in self._order:
            self._order.append(job.job_id)
        self._index[job.job_id] = {key: i for i, key in enumerate(job.keys)}
        self._stolen_from.setdefault(job.job_id, {})
        self._steals.setdefault(job.job_id, 0)
        if job.terminal:
            self._pending[job.job_id] = deque()
        else:
            self._pending[job.job_id] = deque(
                i for i, key in enumerate(job.keys) if key not in job.records
            )

    # ------------------------------------------------------------------
    # Submission (content-addressed, idempotent)
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(tasks: SubmitTasks) -> list[tuple[str, CoSimConfig]]:
        if isinstance(tasks, Mapping):
            pairs = [(str(name), config) for name, config in tasks.items()]
        else:
            pairs = [(str(name), config) for name, config in tasks]
        if not pairs:
            raise ServeError("a job needs at least one task", status=400)
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise ServeError("duplicate task names in submission", status=400)
        return pairs

    def submit(
        self,
        name: str,
        tasks: SubmitTasks,
        params: JobParams | None = None,
    ) -> tuple[Job, str]:
        """Register a sweep; returns ``(job, disposition)``.

        Disposition is ``"submitted"`` (new job), ``"deduplicated"``
        (content-addressed hit on a live or completed job), or
        ``"requeued"`` (an existing job in a terminal *failure* state —
        failed or cancelled — reopened: successful records are kept,
        failures go back to pending).
        """
        pairs = self._normalize(tasks)
        keys = [config_key(config) for _, config in pairs]
        job_id = job_id_for(self.fingerprint, [(n, k) for (n, _), k in zip(pairs, keys)])
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.state in ("failed", "cancelled"):
                    disposition = "requeued"
                    existing.records = {
                        key: record
                        for key, record in existing.records.items()
                        if record.ok
                    }
                    existing.state = "queued"
                    existing.finished_at = None
                    self._stolen_from[job_id] = {}
                    self._install(existing)
                    self.store.record_job_state(job_id, "queued")
                else:
                    disposition = "deduplicated"
                self.registry.inc(
                    "rose_serve_jobs_submitted_total", result=disposition
                )
                return existing, disposition
            job = Job(
                job_id=job_id,
                name=name,
                tasks=pairs,
                keys=keys,
                params=params if params is not None else JobParams(),
                submitted_at=self.clock.now(),
            )
            self._install(job)
            self.store.record_submit(job)
            self.registry.inc("rose_serve_jobs_submitted_total", result="submitted")
            return job, "submitted"

    # ------------------------------------------------------------------
    # Leasing and stealing
    # ------------------------------------------------------------------
    def lease(self, worker: str) -> Assignment | None:
        """Grant the next pending slice to ``worker`` (or ``None``).

        Jobs are served in submission order; within a job, pending tasks
        leave in deque order — stolen tasks sit at the front, so a
        surviving shard picks up a dead shard's work before anything
        else.
        """
        with self._lock:
            now = self.clock.now()
            self._expire_locked(now)
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.terminal:
                    continue
                pending = self._pending[job_id]
                if not pending:
                    continue
                if job.state == "queued":
                    job.state = "running"
                    self.store.record_job_state(job_id, "running")
                take = min(job.params.slice_for(len(job.tasks)), len(pending))
                indices = [pending.popleft() for _ in range(take)]
                provenance = self._stolen_from[job_id]
                prior_owners = [
                    provenance.pop(index)
                    for index in indices
                    if index in provenance
                ]
                if prior_owners:
                    self._steals[job_id] += len(prior_owners)
                    self.registry.inc(
                        "rose_serve_tasks_stolen_total", len(prior_owners)
                    )
                stolen_from = (
                    ",".join(sorted(set(prior_owners))) if prior_owners else None
                )
                claim = Claim(
                    claim_id=self._next_claim,
                    job_id=job_id,
                    worker=worker,
                    indices=list(indices),
                    expires=now + job.params.lease_seconds,
                )
                self._next_claim += 1
                self._claims[claim.claim_id] = claim
                keys = [job.keys[i] for i in indices]
                self.store.record_lease(
                    job_id, claim.claim_id, worker, keys, claim.expires, stolen_from
                )
                self.registry.inc("rose_serve_leases_granted_total")
                return Assignment(
                    job_id=job_id,
                    claim_id=claim.claim_id,
                    worker=worker,
                    tasks=[job.tasks[i] for i in indices],
                    keys=keys,
                    params=job.params,
                    deadline=claim.expires,
                    stolen_from=stolen_from,
                )
        return None

    def owns(self, job_id: str, claim_id: int, worker: str) -> bool:
        """Whether ``worker`` still holds this claim (lease not revoked)."""
        with self._lock:
            claim = self._claims.get(claim_id)
            if claim is None or claim.worker != worker or claim.job_id != job_id:
                return False
            job = self._jobs.get(job_id)
            return job is not None and not job.terminal

    def heartbeat(self, worker: str, claim_id: int) -> bool:
        """Renew a claim's lease; ``False`` means the lease is gone."""
        with self._lock:
            claim = self._claims.get(claim_id)
            if claim is None or claim.worker != worker:
                return False
            job = self._jobs.get(claim.job_id)
            if job is None or job.terminal:
                return False
            claim.expires = self.clock.now() + job.params.lease_seconds
            return True

    def tick(self) -> int:
        """Expire overdue leases; returns how many were revoked."""
        with self._lock:
            return self._expire_locked(self.clock.now())

    def _expire_locked(self, now: float) -> int:
        expired = 0
        for claim_id in sorted(self._claims):
            claim = self._claims[claim_id]
            if claim.expires > now:
                continue
            del self._claims[claim_id]
            expired += 1
            job = self._jobs.get(claim.job_id)
            if job is None or job.terminal:
                continue
            pending = self._pending[claim.job_id]
            provenance = self._stolen_from[claim.job_id]
            orphaned = [
                index
                for index in sorted(claim.indices)
                if job.keys[index] not in job.records
            ]
            # Front of the deque, ascending: stolen work runs next, in
            # task order, regardless of which worker asks.
            for index in reversed(orphaned):
                pending.appendleft(index)
                provenance[index] = claim.worker
            self.store.record_expire(
                claim.job_id,
                claim.claim_id,
                claim.worker,
                [job.keys[i] for i in orphaned],
            )
            self.registry.inc("rose_serve_leases_expired_total")
        return expired

    # ------------------------------------------------------------------
    # Completion (exactly-once accounting, last-event-wins records)
    # ------------------------------------------------------------------
    def complete(
        self,
        worker: str,
        job_id: str,
        claim_id: int,
        name: str,
        key: str,
        state: str,
        attempts: int,
        failure: dict[str, Any] | None = None,
    ) -> bool:
        """Record one task's terminal outcome.

        Returns ``False`` when the job is already terminal (a zombie
        worker reporting after cancellation or completion): the event is
        dropped so settled jobs never reopen.  Otherwise the record is
        written last-event-wins, the claim (if still live) shrinks, the
        lease renews, and the job finalizes once every task has a
        record.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}", status=404)
            if job.terminal:
                return False
            index = self._index[job_id].get(key)
            if index is None:
                raise ServeError(
                    f"job {job_id!r} has no task with key {key[:12]}…", status=400
                )
            record = TaskRecord(
                name=name,
                key=key,
                state=state,
                attempts=attempts,
                owner=worker,
                failure=failure,
            )
            job.records[key] = record
            self.store.record_task(job_id, record)
            self.registry.inc("rose_serve_tasks_completed_total", state=state)
            # The task is done for *everyone*: drop it from whichever
            # claim holds it and from the pending pool, whoever reported.
            for claim in list(self._claims.values()):
                if claim.job_id == job_id and index in claim.indices:
                    claim.indices.remove(index)
                    if not claim.indices:
                        del self._claims[claim.claim_id]
            pending = self._pending[job_id]
            if index in pending:
                pending.remove(index)
            self._stolen_from[job_id].pop(index, None)
            claim = self._claims.get(claim_id)
            if claim is not None and claim.worker == worker:
                claim.expires = self.clock.now() + job.params.lease_seconds
            if len(job.records) == len(job.tasks):
                self._finalize_locked(job)
            return True

    def _finalize_locked(self, job: Job) -> None:
        all_ok = all(record.ok for record in job.records.values())
        job.state = "done" if all_ok else "failed"
        job.finished_at = self.clock.now()
        self._release_job_locked(job.job_id)
        self.store.record_job_state(job.job_id, job.state)
        self.registry.inc("rose_serve_jobs_finished_total", state=job.state)

    def _release_job_locked(self, job_id: str) -> None:
        self._pending[job_id] = deque()
        self._stolen_from[job_id] = {}
        for claim_id in sorted(self._claims):
            if self._claims[claim_id].job_id == job_id:
                del self._claims[claim_id]

    # ------------------------------------------------------------------
    # Cancellation and introspection
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a live job; ``False`` if it already reached a terminal
        state (terminal jobs are immutable — resubmit to requeue)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}", status=404)
            if job.terminal:
                return False
            job.state = "cancelled"
            job.finished_at = self.clock.now()
            self._release_job_locked(job_id)
            self.store.record_cancel(job_id)
            self.store.record_job_state(job_id, "cancelled")
            self.registry.inc("rose_serve_jobs_finished_total", state="cancelled")
            return True

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}", status=404)
            return job

    def job_ids(self) -> list[str]:
        with self._lock:
            return list(self._order)

    def has_live_jobs(self) -> bool:
        with self._lock:
            return any(not self._jobs[job_id].terminal for job_id in self._order)

    def status(self, job_id: str) -> dict[str, Any]:
        """A JSON-safe snapshot of one job's progress and leases."""
        with self._lock:
            job = self.job(job_id)
            leases = [
                {
                    "claim": claim.claim_id,
                    "worker": claim.worker,
                    "remaining": len(claim.indices),
                    "expires": claim.expires,
                }
                for claim_id in sorted(self._claims)
                if (claim := self._claims[claim_id]).job_id == job_id
            ]
            return {
                "job": job.job_id,
                "name": job.name,
                "state": job.state,
                "tasks": job.counts(),
                "pending": len(self._pending[job_id]),
                "owners": job.owners(),
                "steals": self._steals.get(job_id, 0),
                "leases": leases,
                "params": job.params.to_dict(),
            }

    def statuses(self) -> list[dict[str, Any]]:
        with self._lock:
            return [self.status(job_id) for job_id in self._order]
