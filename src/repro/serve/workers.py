"""Shard workers: lease a slice, run it through the sweep engine, report.

A :class:`ShardWorker` is the service's data plane.  Each ``step()``
asks the scheduler for one claim, executes the leased tasks through the
*existing* supervised :class:`~repro.sweep.runner.SweepRunner` — same
retries, timeouts, batching, chaos hooks, and determinism discipline as
a single-host sweep — and reports each terminal outcome back.  The
shared content-addressed :class:`~repro.sweep.cache.ResultCache` is the
artifact store: results land there before the completion report, so a
worker that dies between executing and reporting loses only
*accounting*, never *work* — the thief that re-leases the slice resolves
it from cache instantly.

Workers are deliberately dumb about time: they heartbeat through the
scheduler and never read a clock.  The deterministic harness drives
``step()`` by hand; production serving wraps workers in a
:class:`ThreadedWorkerHost`, one polling thread per shard.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.serve.jobs import JobParams
from repro.serve.scheduler import Assignment, Scheduler
from repro.sweep.cache import ResultCache
from repro.sweep.fingerprint import config_key
from repro.sweep.resilience import RetryPolicy
from repro.sweep.runner import SweepRunner


class ShardWorker:
    """One shard: leases claims, executes them, reports completions.

    ``abort`` is a fault-injection seam for the service test harness: it
    is consulted after the lease is granted and again before each
    per-task completion report.  Returning ``True`` makes the worker
    vanish mid-claim without reporting — exactly what a killed shard
    process looks like to the scheduler — so the kill-a-shard /
    steal-its-work scenario is reproducible without real processes or
    real time.
    """

    def __init__(
        self,
        worker_id: str,
        scheduler: Scheduler,
        cache: ResultCache,
        abort: Callable[[], bool] | None = None,
    ):
        self.worker_id = worker_id
        self.scheduler = scheduler
        self.cache = cache
        self.abort = abort
        self.claims_run = 0
        self.tasks_reported = 0

    # ------------------------------------------------------------------
    def _runner(self, params: JobParams) -> SweepRunner:
        """A supervised sweep runner configured from the job's params.

        No journal: the service's job store *is* the completion log, and
        the shared cache already makes re-execution after a crash cheap.
        The worker id rides along as the runner's ``owner`` so every
        outcome (and the job store's task records) carries shard
        attribution.
        """
        return SweepRunner(
            workers=params.workers,
            cache=self.cache,
            retry=RetryPolicy(max_attempts=params.max_attempts),
            task_timeout=params.task_timeout,
            batch_size=params.batch_size,
            owner=self.worker_id,
        )

    def step(self) -> bool:
        """Lease and execute one claim; ``False`` when no work exists."""
        assignment = self.scheduler.lease(self.worker_id)
        if assignment is None:
            return False
        self.claims_run += 1
        if self.abort is not None and self.abort():
            return True  # died holding the lease; expiry will free it
        self._execute(assignment)
        return True

    def _execute(self, assignment: Assignment) -> None:
        report = self._runner(assignment.params).run(assignment.tasks)
        # Renew the lease before the report loop: execution was the slow
        # part, and a completion storm should not race its own deadline.
        self.scheduler.heartbeat(self.worker_id, assignment.claim_id)
        for outcome in report.outcomes:
            if self.abort is not None and self.abort():
                return  # died mid-report; unreported tasks get stolen
            self.scheduler.complete(
                worker=self.worker_id,
                job_id=assignment.job_id,
                claim_id=assignment.claim_id,
                name=outcome.name,
                key=config_key(outcome.config),
                state=outcome.state,
                attempts=outcome.attempts,
                failure=(
                    outcome.failure.to_dict()
                    if outcome.failure is not None
                    else None
                ),
            )
            self.tasks_reported += 1

    def drain(self, max_claims: int | None = None) -> int:
        """Run ``step()`` until the scheduler has nothing for us.

        Returns how many claims were executed.  ``max_claims`` bounds
        the loop for tests that want to stop a worker mid-sweep.
        """
        ran = 0
        while max_claims is None or ran < max_claims:
            if not self.step():
                break
            ran += 1
        return ran


class ThreadedWorkerHost:
    """Production serving: one polling thread per shard worker.

    Threads (not processes) because the heavy lifting already happens in
    each shard's SweepRunner — which forks its own process pool when
    ``params.workers > 1`` — so host threads spend their lives blocked
    in ``run()`` or idling on the poll interval, and the scheduler's
    lock sees only brief, coarse-grained critical sections.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        cache: ResultCache,
        shards: int = 2,
        poll_seconds: float = 0.05,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.scheduler = scheduler
        self.cache = cache
        self.shards = shards
        self.poll_seconds = poll_seconds
        self.workers = [
            ShardWorker(f"shard-{i}", scheduler, cache) for i in range(shards)
        ]
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for worker in self.workers:
            thread = threading.Thread(
                target=self._serve, args=(worker,), name=worker.worker_id, daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, worker: ShardWorker) -> None:
        while not self._stop.is_set():
            if not worker.step():
                # Idle: park on the stop event, which doubles as the
                # poll timer — no bare sleeps (lint rule SRV001).
                self._stop.wait(self.poll_seconds)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
