"""The sweep service facade: submit, shard, steal, report — bit-identically.

:class:`SweepService` wires the serve stack together: a journaled
:class:`~repro.serve.jobs.JobStore`, the lease/steal
:class:`~repro.serve.scheduler.Scheduler`, a shared content-addressed
:class:`~repro.sweep.cache.ResultCache`, and (in production mode) a
:class:`~repro.serve.workers.ThreadedWorkerHost` plus a tick thread that
expires dead shards' leases.  The HTTP layer
(:mod:`repro.serve.api`) is a thin JSON shim over this object; the
deterministic end-to-end harness drives it directly with a
:class:`~repro.serve.clock.FakeClock` and hand-stepped workers.

The service's headline contract is **serial/service bit-identity**: a
sweep executed through N shards with work-stealing must reproduce the
single-host serial :class:`~repro.sweep.runner.SweepReport` exactly.
:func:`report_signature` is the equality the ``service_vs_serial``
oracle checks — a digest over what the sweep *computed*:

* per task (in submission order): name, success-or-failure identity
  (``ok`` and ``from_cache`` normalize together — a stolen task that
  resolves from the dead shard's cache entry computed the same thing a
  cold serial run computes), the mission signature of the result, and
  the failure kind if any;
* the merged mission telemetry (associative/commutative, so shard
  placement cannot move it).

Deliberately *excluded*: wall times, worker counts, owner attribution,
cache hit counters, and every ``rose_sweep_*`` / ``rose_serve_*`` ops
series — those describe *how* the sweep ran, and sharding is allowed to
change the how, never the what.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any

from repro.errors import ServeError
from repro.obs.aggregate import merge_snapshots
from repro.obs.declarations import serve_registry, sweep_registry
from repro.obs.metrics import MetricsRegistry
from repro.serve.clock import Clock, SystemClock
from repro.serve.jobs import Job, JobParams, JobStore
from repro.serve.scheduler import Scheduler, SubmitTasks
from repro.serve.workers import ShardWorker, ThreadedWorkerHost
from repro.sweep.cache import ResultCache
from repro.sweep.fingerprint import code_fingerprint
from repro.sweep.resilience import TaskFailure
from repro.sweep.runner import SweepOutcome, SweepReport
from repro.sweep.signature import mission_signature

#: Filenames inside a service root directory.
JOBS_LOG = "jobs.jsonl"
CACHE_DIR = "cache"


def report_signature(report: SweepReport) -> str:
    """Digest of what a sweep computed (never how it was scheduled)."""
    tasks = []
    for outcome in report.outcomes:
        tasks.append(
            {
                "name": outcome.name,
                "state": "ok" if outcome.ok else outcome.state,
                "signature": (
                    mission_signature(outcome.result)
                    if outcome.result is not None
                    else None
                ),
                "failure": (
                    outcome.failure.kind if outcome.failure is not None else None
                ),
            }
        )
    mission_metrics = merge_snapshots(
        [
            outcome.result.obs.metrics
            for outcome in report.outcomes
            if outcome.result is not None and outcome.result.obs is not None
        ]
    )
    payload = json.dumps(
        {"tasks": tasks, "mission_metrics": mission_metrics},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SweepService:
    """One service instance over one root directory (journal + cache)."""

    def __init__(
        self,
        root: str | Path,
        shards: int = 2,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        poll_seconds: float = 0.05,
        tick_seconds: float = 0.25,
    ):
        self.root = Path(root)
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.registry = registry if registry is not None else serve_registry()
        self.fingerprint = code_fingerprint()
        self.cache = ResultCache(self.root / CACHE_DIR, fingerprint=self.fingerprint)
        self.store = JobStore(self.root / JOBS_LOG)
        # Scheduler construction replays the job store: a restarted
        # service resumes every unfinished job, with in-flight leases
        # from the previous life implicitly expired (steal on restart).
        self.scheduler = Scheduler(
            self.store, self.clock, self.registry, fingerprint=self.fingerprint
        )
        self.shards = shards
        self.poll_seconds = poll_seconds
        self.tick_seconds = tick_seconds
        self._host: ThreadedWorkerHost | None = None
        self._tick_stop = threading.Event()
        self._tick_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Control plane (what the API exposes)
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        tasks: SubmitTasks,
        params: JobParams | None = None,
    ) -> dict[str, Any]:
        job, disposition = self.scheduler.submit(name, tasks, params)
        return {"job": job.job_id, "disposition": disposition, "state": job.state}

    def status(self, job_id: str) -> dict[str, Any]:
        return self.scheduler.status(job_id)

    def statuses(self) -> list[dict[str, Any]]:
        return self.scheduler.statuses()

    def cancel(self, job_id: str) -> dict[str, Any]:
        cancelled = self.scheduler.cancel(job_id)
        return {
            "job": job_id,
            "cancelled": cancelled,
            "state": self.scheduler.job(job_id).state,
        }

    def telemetry(self) -> dict[str, Any]:
        """Service-wide ops snapshot (``rose_serve_*`` registry)."""
        return self.registry.snapshot()

    def job_telemetry(self, job_id: str) -> dict[str, Any]:
        """Merged *mission* telemetry over a job's completed tasks.

        Streams: callable at any point in the job's life, covering
        whatever has completed so far.  Results are resolved from the
        cache; a completed task whose artifact was pruned just drops out
        of the merge (telemetry is monitoring, not identity — the
        report path, which *is* identity-bearing, hard-fails instead).
        """
        job = self.scheduler.job(job_id)
        snapshots = []
        for (name, config), key in zip(job.tasks, job.keys):
            record = job.records.get(key)
            if record is None or not record.ok:
                continue
            result = self.cache.get(config)
            if result is not None and result.obs is not None:
                snapshots.append(result.obs.metrics)
        return {
            "job": job_id,
            "state": job.state,
            "completed": len(job.records),
            "total": len(job.tasks),
            "mission_metrics": merge_snapshots(snapshots),
        }

    # ------------------------------------------------------------------
    # Report assembly (the bit-identity surface)
    # ------------------------------------------------------------------
    def report(self, job_id: str) -> SweepReport:
        """Assemble the job's :class:`SweepReport` from records + cache.

        Only ``done`` / ``failed`` jobs have a report (409 otherwise:
        queued/running jobs are incomplete, cancelled jobs never settled
        every task).  Outcomes are rebuilt in submission order; success
        records resolve their result from the content-addressed cache —
        a missing artifact is a 502, because the report would no longer
        reproduce what was computed.
        """
        job = self.scheduler.job(job_id)
        if job.state not in ("done", "failed"):
            raise ServeError(
                f"job {job_id!r} is {job.state}; a report exists only for "
                f"done/failed jobs",
                status=409,
            )
        outcomes: list[SweepOutcome] = []
        for (name, config), key in zip(job.tasks, job.keys):
            record = job.records[key]
            result = None
            failure = None
            if record.ok:
                result = self.cache.get(config)
                if result is None:
                    raise ServeError(
                        f"job {job_id!r}: result for task {name!r} is missing "
                        f"from the artifact cache (pruned or corrupt)",
                        status=502,
                    )
            elif record.failure is not None:
                failure = TaskFailure.from_dict(record.failure)
            outcomes.append(
                SweepOutcome(
                    name=name,
                    config=config,
                    result=result,
                    wall_seconds=0.0,
                    from_cache=record.state == "from_cache",
                    state=record.state,
                    attempts=record.attempts,
                    failure=failure,
                    owner=record.owner,
                )
            )
        finished = job.finished_at if job.finished_at is not None else job.submitted_at
        report = SweepReport(
            outcomes=outcomes,
            wall_seconds=max(0.0, finished - job.submitted_at),
            workers=len(job.owners()),
            fingerprint=self.fingerprint,
            # Identity discipline: the service report carries a *fresh*
            # (empty) sweep-registry snapshot, not the shards' merged ops
            # series — retries/steals/replays describe scheduling, and
            # report_signature must match the serial run's.
            sweep_metrics=sweep_registry().snapshot(),
        )
        report.cache_hits = self.cache.hits
        report.cache_misses = self.cache.misses
        report.cache_stores = self.cache.stores
        return report

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def worker(self, worker_id: str, **kwargs: Any) -> ShardWorker:
        """A hand-steppable shard worker (the deterministic harness)."""
        return ShardWorker(worker_id, self.scheduler, self.cache, **kwargs)

    def start(self) -> None:
        """Boot production serving: shard threads plus the tick loop."""
        if self._host is None:
            self._host = ThreadedWorkerHost(
                self.scheduler,
                self.cache,
                shards=self.shards,
                poll_seconds=self.poll_seconds,
            )
            self._host.start()
        if self._tick_thread is None:
            self._tick_stop.clear()
            self._tick_thread = threading.Thread(
                target=self._tick_loop, name="serve-tick", daemon=True
            )
            self._tick_thread.start()

    def _tick_loop(self) -> None:
        while not self._tick_stop.is_set():
            self.scheduler.tick()
            self._tick_stop.wait(self.tick_seconds)

    def close(self) -> None:
        if self._host is not None:
            self._host.stop()
            self._host = None
        if self._tick_thread is not None:
            self._tick_stop.set()
            self._tick_thread.join(timeout=10.0)
            self._tick_thread = None

    def wait(self, job_id: str, timeout: float = 60.0) -> dict[str, Any]:
        """Block until ``job_id`` reaches a terminal state (threaded mode).

        Polls on the service clock — under a :class:`FakeClock` this
        returns immediately after one check, so tests never hang; the
        deterministic harness drives workers by hand instead of waiting.
        """
        deadline = self.clock.now() + timeout
        while True:
            job = self.scheduler.job(job_id)
            if job.terminal:
                return self.status(job_id)
            if self.clock.now() >= deadline:
                raise ServeError(
                    f"job {job_id!r} still {job.state} after {timeout}s",
                    status=409,
                )
            self.clock.sleep(self.poll_seconds)

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_job_to_completion(
    service: SweepService, job_id: str, workers: int = 2, max_rounds: int = 100
) -> dict[str, Any]:
    """Drive a job with in-process workers until it settles (no threads).

    The synchronous execution path: used by the CLI's ``submit --wait``
    against an in-process service and by tests that want service
    semantics without the threaded host.  Workers are stepped round-robin
    so claims interleave the way the threaded host's shards would.
    """
    shard_workers = [service.worker(f"shard-{i}") for i in range(max(1, workers))]
    for _ in range(max_rounds):
        job = service.scheduler.job(job_id)
        if job.terminal:
            break
        service.scheduler.tick()
        progressed = False
        for worker in shard_workers:
            if worker.step():
                progressed = True
        if not progressed and not service.scheduler.job(job_id).terminal:
            raise ServeError(
                f"job {job_id!r} stalled: no worker could make progress",
                status=409,
            )
    return service.status(job_id)
