"""Stdlib HTTP client for the sweep service (used by the CLI).

Thin by design: every method is one request against the JSON routes in
:mod:`repro.serve.api`, decoded and returned as plain dicts.  Error
responses round-trip back into :class:`~repro.errors.ServeError` with
the server's status code, so CLI exit-code mapping and library callers
see the same taxonomy whether the service is in-process or remote.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.core.config import CoSimConfig
from repro.core.manifest import config_to_dict
from repro.errors import ServeError
from repro.serve.clock import Clock, SystemClock
from repro.serve.jobs import TERMINAL_JOB_STATES, JobParams


class ServiceClient:
    """Talk to a running sweep service at ``base_url``."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        clock: Clock | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.clock: Clock = clock if clock is not None else SystemClock()

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", str(exc))
            except (ValueError, AttributeError):
                detail = str(exc)
            raise ServeError(str(detail), status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach service at {self.base_url}: {exc.reason}", status=502
            ) from exc
        if not isinstance(payload, dict):
            raise ServeError(
                f"service returned a non-object payload for {path}", status=502
            )
        return payload

    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        name: str,
        tasks: list[tuple[str, CoSimConfig]],
        params: JobParams | None = None,
    ) -> dict[str, Any]:
        body = {
            "name": name,
            "tasks": [
                {"name": task_name, "config": config_to_dict(config)}
                for task_name, config in tasks
            ],
            "params": (params or JobParams()).to_dict(),
        }
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> list[dict[str, Any]]:
        payload = self._request("GET", "/v1/jobs")
        jobs = payload.get("jobs", [])
        return jobs if isinstance(jobs, list) else []

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def report(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/report")

    def job_telemetry(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/telemetry")

    def telemetry(self) -> dict[str, Any]:
        return self._request("GET", "/v1/telemetry")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_seconds: float = 0.2
    ) -> dict[str, Any]:
        """Poll until the job settles; returns its final status."""
        deadline = self.clock.now() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL_JOB_STATES:
                return status
            if self.clock.now() >= deadline:
                raise ServeError(
                    f"job {job_id!r} still {status.get('state')} after {timeout}s",
                    status=409,
                )
            self.clock.sleep(poll_seconds)
