"""repro.serve — sweep-as-a-service: scheduler, shards, HTTP API.

The serve layer turns the single-host sweep engine into a long-running
service: jobs are submitted over a JSON API (or in-process), sharded
across workers under a lease/steal scheduler, journaled crash-safe in
the ``rose-jobq/1`` store, and reported **bit-identically** to a serial
single-host run (the ``service_vs_serial`` oracle pins this).

See DESIGN.md §12 for the architecture and the determinism argument.
"""

from repro.serve.api import ServiceServer, dispatch
from repro.serve.client import ServiceClient
from repro.serve.clock import Clock, FakeClock, SystemClock
from repro.serve.jobs import (
    JOB_STATES,
    JOBQ_FORMAT,
    TERMINAL_JOB_STATES,
    Job,
    JobParams,
    JobStore,
    TaskRecord,
    job_id_for,
)
from repro.serve.scheduler import Assignment, Claim, Scheduler
from repro.serve.service import (
    SweepService,
    report_signature,
    run_job_to_completion,
)
from repro.serve.workers import ShardWorker, ThreadedWorkerHost

__all__ = [
    "Assignment",
    "Claim",
    "Clock",
    "FakeClock",
    "JOBQ_FORMAT",
    "JOB_STATES",
    "Job",
    "JobParams",
    "JobStore",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "ShardWorker",
    "SweepService",
    "SystemClock",
    "TERMINAL_JOB_STATES",
    "TaskRecord",
    "ThreadedWorkerHost",
    "dispatch",
    "job_id_for",
    "report_signature",
    "run_job_to_completion",
]
