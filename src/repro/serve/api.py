"""JSON-over-HTTP surface for the sweep service (stdlib only).

Two layers, deliberately separated:

* :func:`dispatch` — a pure function from ``(method, path, body)`` to
  ``(status, payload)``.  All routing, validation, and JSON shaping
  lives here, so the entire API is testable in-process without opening
  a socket (the end-to-end harness calls ``dispatch`` directly against
  a fake-clock service).
* :class:`ServiceServer` — a ``ThreadingHTTPServer`` shim that decodes
  the request, calls :func:`dispatch`, and encodes the response.  It
  contains no logic worth testing over a live socket beyond "bytes go
  in, bytes come out", which one smoke path covers.

Routes::

    GET  /healthz                    service liveness + fingerprint
    GET  /v1/jobs                    all job statuses (submission order)
    POST /v1/jobs                    submit a sweep (202 new, 200 dedup)
    GET  /v1/jobs/<id>               one job's status
    GET  /v1/jobs/<id>/report        assembled report (409 unless settled)
    GET  /v1/jobs/<id>/telemetry     merged mission telemetry (streamable)
    POST /v1/jobs/<id>/cancel        cancel a live job
    GET  /v1/telemetry               rose_serve_* ops snapshot

Errors are ``{"error": message}`` with the :class:`ServeError` status
(400 bad input, 404 unknown job/route, 409 wrong state, 502 artifact
loss).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.core.manifest import config_from_dict
from repro.errors import ReproError, ServeError
from repro.serve.jobs import JOBQ_FORMAT, JobParams
from repro.serve.service import SweepService, report_signature
from repro.sweep.signature import mission_signature


def _parse_tasks(payload: Any) -> list[tuple[str, Any]]:
    if not isinstance(payload, list) or not payload:
        raise ServeError("tasks must be a non-empty list", status=400)
    tasks = []
    for position, entry in enumerate(payload):
        if not isinstance(entry, dict) or "config" not in entry:
            raise ServeError(
                f"tasks[{position}] must be an object with a 'config'", status=400
            )
        name = str(entry.get("name", f"task{position}"))
        try:
            config = config_from_dict(dict(entry["config"]))
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise ServeError(
                f"tasks[{position}].config is invalid: {exc}", status=400
            ) from exc
        tasks.append((name, config))
    return tasks


def _submit(service: SweepService, body: Any) -> tuple[int, dict[str, Any]]:
    if not isinstance(body, dict):
        raise ServeError("request body must be a JSON object", status=400)
    tasks = _parse_tasks(body.get("tasks"))
    params_payload = body.get("params", {})
    if not isinstance(params_payload, dict):
        raise ServeError("params must be a JSON object", status=400)
    params = JobParams.from_dict(params_payload)
    result = service.submit(str(body.get("name", "sweep")), tasks, params)
    status = 200 if result["disposition"] == "deduplicated" else 202
    return status, result


def _report_payload(service: SweepService, job_id: str) -> dict[str, Any]:
    report = service.report(job_id)
    return {
        "job": job_id,
        "ok": report.ok,
        "signature": report_signature(report),
        "fingerprint": report.fingerprint,
        "workers": report.workers,
        "outcomes": [
            {
                "name": outcome.name,
                "state": outcome.state,
                "attempts": outcome.attempts,
                "owner": outcome.owner,
                "signature": (
                    mission_signature(outcome.result)
                    if outcome.result is not None
                    else None
                ),
                "failure": (
                    outcome.failure.to_dict() if outcome.failure is not None else None
                ),
            }
            for outcome in report.outcomes
        ],
        "telemetry": report.telemetry(),
    }


def _route_label(method: str, parts: list[str]) -> str:
    """A bounded-cardinality route label for ``rose_serve_requests_total``."""
    if parts == ["healthz"]:
        return "healthz"
    if parts == ["v1", "telemetry"]:
        return "telemetry"
    if parts == ["v1", "jobs"]:
        return "jobs"
    if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
        return "job"
    if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
        return f"job_{parts[3]}" if parts[3] in ("report", "telemetry", "cancel") else "unknown"
    return "unknown"


def dispatch(
    service: SweepService, method: str, path: str, body: Any = None
) -> tuple[int, dict[str, Any]]:
    """Route one API request; returns ``(http_status, json_payload)``.

    Pure with respect to the transport: no sockets, no encoding — the
    in-process harness and the HTTP handler share this single entry
    point, so what the tests exercise is what the server serves.
    """
    status, payload = _dispatch_inner(service, method, path, body)
    parts = [part for part in path.split("/") if part]
    service.registry.inc(
        "rose_serve_requests_total",
        route=_route_label(method, parts),
        status=str(status),
    )
    return status, payload


def _dispatch_inner(
    service: SweepService, method: str, path: str, body: Any
) -> tuple[int, dict[str, Any]]:
    try:
        parts = [part for part in path.split("/") if part]
        if method == "GET" and parts == ["healthz"]:
            return 200, {
                "ok": True,
                "format": JOBQ_FORMAT,
                "fingerprint": service.fingerprint,
            }
        if parts == ["v1", "telemetry"] and method == "GET":
            return 200, {"serve": service.telemetry()}
        if parts == ["v1", "jobs"]:
            if method == "GET":
                return 200, {"jobs": service.statuses()}
            if method == "POST":
                return _submit(service, body)
            return 405, {"error": f"method {method} not allowed on {path}"}
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"] and method == "GET":
            return 200, service.status(parts[2])
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            job_id, action = parts[2], parts[3]
            if method == "GET" and action == "report":
                return 200, _report_payload(service, job_id)
            if method == "GET" and action == "telemetry":
                return 200, service.job_telemetry(job_id)
            if method == "POST" and action == "cancel":
                return 200, service.cancel(job_id)
        return 404, {"error": f"no route for {method} {path}"}
    except ServeError as exc:
        return exc.status, {"error": str(exc)}


class _Handler(BaseHTTPRequestHandler):
    """Transport shim: JSON in, :func:`dispatch`, JSON out."""

    server: "ServiceServer"

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        encoded = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    def _handle(self, method: str) -> None:
        try:
            body = self._body()
        except ServeError as exc:
            self._respond(exc.status, {"error": str(exc)})
            return
        status, payload = dispatch(self.server.service, method, self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; ops visibility comes from rose_serve_*


class ServiceServer(ThreadingHTTPServer):
    """The sweep service bound to a TCP port (0 = ephemeral, for tests)."""

    daemon_threads = True

    def __init__(self, service: SweepService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"
