"""Injected clocks: the service's only doorway to wall time.

Every serve-side component (scheduler leases, worker heartbeats, the
tick loop) reads time through a :class:`Clock` handed to it at
construction.  That single seam is what makes the end-to-end service
test harness deterministic: tests install a :class:`FakeClock`, advance
it explicitly past lease deadlines, and drive scheduler ticks by hand —
no real sleeping, no flaky timing margins.

Lint rule SRV001 pins the discipline: this module is the only file
under ``repro/serve/`` allowed to touch ``time.*`` directly.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """What the service needs from a clock: monotonic now, and sleep."""

    def now(self) -> float:
        """Seconds on a monotonic axis (not an epoch timestamp)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Park the caller for ``seconds`` (fake clocks just advance)."""
        ...


class SystemClock:
    """The real thing: monotonic reads, real sleeps (production serving)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A hand-cranked clock for the deterministic service harness.

    ``sleep`` advances instead of blocking, so code written against the
    :class:`Clock` protocol runs at full speed under test while still
    observing the passage of (virtual) time — lease expiry, heartbeat
    staleness, scheduler tick cadence.
    """

    def __init__(self, start: float = 1_000.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))
