"""Simulation tracing with Chrome-trace export.

Records the co-simulation's orchestration timeline — synchronization
steps, packet dispatches, sensor servicing — against *simulated* time, and
exports the standard Chrome trace-event JSON (load in ``chrome://tracing``
or Perfetto) for visual inspection of the lockstep schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One trace event; durations and timestamps in simulated seconds."""

    name: str
    category: str
    start_s: float
    duration_s: float = 0.0
    track: str = "synchronizer"
    args: dict[str, object] = field(default_factory=dict)

    @property
    def instant(self) -> bool:
        return self.duration_s == 0.0


class Tracer:
    """Append-only event recorder."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def instant(
        self,
        name: str,
        category: str,
        at_s: float,
        track: str = "synchronizer",
        **args: object,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(name=name, category=category, start_s=at_s, track=track, args=args)
        )

    def span(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: str = "synchronizer",
        **args: object,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                name=name,
                category=category,
                start_s=start_s,
                duration_s=duration_s,
                track=track,
                args=args,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON (timestamps in microseconds)."""
        tracks = sorted({e.track for e in self.events})
        tid = {track: i + 1 for i, track in enumerate(tracks)}
        records = [
            {
                "name": f"track:{track}",
                "ph": "M",
                "pid": 1,
                "tid": tid[track],
                "cat": "__metadata",
                "args": {"name": track},
                "ts": 0,
            }
            for track in tracks
        ]
        for event in self.events:
            record = {
                "name": event.name,
                "cat": event.category,
                "pid": 1,
                "tid": tid[event.track],
                "ts": event.start_s * 1e6,
                "args": event.args,
            }
            if event.instant:
                record["ph"] = "i"
                record["s"] = "t"
            else:
                record["ph"] = "X"
                record["dur"] = event.duration_s * 1e6
            records.append(record)
        return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_chrome_trace())
