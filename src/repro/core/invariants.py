"""Runtime invariant checking for the co-simulation machinery.

RoSÉ's claim that co-simulation results are trustworthy rests on the
lockstep protocol behaving exactly as specified (Section 3.4.1 /
Algorithm 1).  This module is the standing witness for that contract:
an :class:`InvariantChecker` woven (optionally) into the
:class:`~repro.core.synchronizer.Synchronizer`, the
:class:`~repro.core.bridge.RoseBridge`, and the
:class:`~repro.core.faults.FaultInjector` that asserts, every
synchronization step:

* **Monotonic sim time** — simulated time advances by exactly one
  synchronization period per completed step, never backwards.
* **Grant/ack pairing** — every completed step was granted (possibly
  re-granted by the watchdog) and acknowledged exactly once; the FireSim
  host executed each step exactly once.
* **Token conservation** — the SoC advanced exactly
  ``steps * cycles_per_sync`` cycles, and the bridge's hardware queues
  balance (enqueued == dequeued + buffered, byte totals match the queued
  packets).
* **CRC-discard accounting** — frames discarded on decode never exceed
  the corruptions the fault injector actually applied, and are zero on a
  fault-free link.

Checking is observational: a passing run is bit-identical with the
checker on or off.  A violation raises
:class:`~repro.errors.InvariantViolation` — the co-simulation machinery
broke its own contract, which is a harness bug, never an experimental
outcome.

Enablement is resolved by :func:`invariants_enabled`: an explicit
``CoSimConfig.check_invariants`` wins; otherwise the
``REPRO_CHECK_INVARIANTS`` environment variable; otherwise checking is
on automatically under pytest (``PYTEST_CURRENT_TEST`` is set) and off
elsewhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cosim imports us)
    from repro.core.bridge import RoseBridge
    from repro.core.config import CoSimConfig, SyncConfig
    from repro.core.faults import FaultInjector
    from repro.core.transport import Transport
    from repro.soc.firesim import FireSimHost
    from repro.soc.soc import Soc

#: Environment variable forcing invariant checking on ("1") or off ("0")
#: when ``CoSimConfig.check_invariants`` is left at ``None`` (auto).
ENV_FLAG = "REPRO_CHECK_INVARIANTS"

_FALSEY = ("", "0", "false", "no", "off")


def invariants_enabled(config: "CoSimConfig") -> bool:
    """Resolve the three-state ``check_invariants`` flag to a decision.

    Explicit ``True``/``False`` on the config wins; otherwise the
    ``REPRO_CHECK_INVARIANTS`` environment variable; otherwise checks are
    enabled exactly when running under pytest.
    """
    if config.check_invariants is not None:
        return bool(config.check_invariants)
    env = os.environ.get(ENV_FLAG)
    if env is not None:
        return env.strip().lower() not in _FALSEY
    return "PYTEST_CURRENT_TEST" in os.environ


@dataclass
class InvariantReport:
    """What the checker verified over one mission (all counters)."""

    steps_checked: int = 0
    grants_seen: int = 0
    dones_seen: int = 0
    stale_dones_seen: int = 0
    bridge_checks: int = 0
    link_checks: int = 0
    injector_steps: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "steps_checked": self.steps_checked,
            "grants_seen": self.grants_seen,
            "dones_seen": self.dones_seen,
            "stale_dones_seen": self.stale_dones_seen,
            "bridge_checks": self.bridge_checks,
            "link_checks": self.link_checks,
            "injector_steps": self.injector_steps,
        }


class InvariantChecker:
    """Cross-layer assertion engine for one co-simulation run.

    The mission runner constructs one checker, points it at the
    components it should watch (:meth:`watch`), and the synchronizer
    drives it through the per-step hooks.  All checks raise
    :class:`~repro.errors.InvariantViolation` with a message naming the
    invariant and the observed values.
    """

    def __init__(self, sync: "SyncConfig"):
        self.sync = sync
        self.report = InvariantReport()
        self._bridge: "RoseBridge | None" = None
        self._host: "FireSimHost | None" = None
        self._soc: "Soc | None" = None
        self._transports: tuple["Transport", ...] = ()
        self._injector: "FaultInjector | None" = None
        self._last_sim_time: float | None = None
        self._granted_step: int | None = None
        self._done_step: int | None = None
        self._completed_steps = 0

    # ------------------------------------------------------------------
    def watch(
        self,
        bridge: "RoseBridge | None" = None,
        host: "FireSimHost | None" = None,
        soc: "Soc | None" = None,
        transports: tuple["Transport", ...] = (),
        injector: "FaultInjector | None" = None,
    ) -> None:
        """Register the components whose cross-layer state is checked."""
        self._bridge = bridge
        self._host = host
        self._soc = soc
        self._transports = tuple(transports)
        self._injector = injector

    @staticmethod
    def _fail(invariant: str, detail: str) -> None:
        raise InvariantViolation(f"[{invariant}] {detail}")

    # ------------------------------------------------------------------
    # Synchronizer hooks
    # ------------------------------------------------------------------
    def on_grant(self, step_index: int) -> None:
        """A SYNC_GRANT (or watchdog regrant) left the synchronizer."""
        self.report.grants_seen += 1
        if step_index < self._completed_steps:
            self._fail(
                "grant-pairing",
                f"grant issued for already-completed step {step_index} "
                f"({self._completed_steps} steps complete)",
            )
        self._granted_step = step_index

    def on_done(self, step_index: int, stale: bool = False) -> None:
        """A SYNC_DONE was accepted (or recognized as a stale duplicate)."""
        if stale:
            self.report.stale_dones_seen += 1
            if step_index >= self._completed_steps:
                self._fail(
                    "grant-pairing",
                    f"SYNC_DONE for step {step_index} classified stale but only "
                    f"{self._completed_steps} steps are complete",
                )
            return
        if self._done_step is not None and step_index == self._done_step:
            # A duplicated/re-acknowledged SYNC_DONE for the step that just
            # completed (injected duplication, regrant aftermath) — benign.
            self.report.stale_dones_seen += 1
            return
        self.report.dones_seen += 1
        if self._granted_step is None or step_index != self._granted_step:
            self._fail(
                "grant-pairing",
                f"SYNC_DONE for step {step_index} without a matching grant "
                f"(granted: {self._granted_step})",
            )
        if self._done_step is not None and step_index < self._done_step:
            self._fail(
                "grant-pairing",
                f"completion went backwards: step {step_index} after "
                f"step {self._done_step}",
            )
        self._done_step = step_index

    def after_step(self, step_index: int, sim_time: float) -> None:
        """End-of-step checks: time, pairing, tokens, queues, CRC books."""
        self.report.steps_checked += 1
        # -- monotonic sim time (advance by exactly one period) ----------
        if self._last_sim_time is None:
            expected = 0.0 + self.sync.sync_period_seconds
        else:
            expected = self._last_sim_time + self.sync.sync_period_seconds
        if sim_time != expected:
            self._fail(
                "monotonic-sim-time",
                f"step {step_index} advanced sim time to {sim_time!r}, "
                f"expected exactly {expected!r} "
                f"(previous {self._last_sim_time!r} + period "
                f"{self.sync.sync_period_seconds!r})",
            )
        self._last_sim_time = sim_time
        # -- grant/ack pairing -------------------------------------------
        if self._done_step != step_index:
            self._fail(
                "grant-pairing",
                f"step {step_index} ended without its SYNC_DONE "
                f"(last acknowledged: {self._done_step})",
            )
        self._completed_steps = step_index + 1
        if self._host is not None:
            executed = getattr(self._host, "steps_completed", None)
            if executed is not None and executed != self._completed_steps:
                self._fail(
                    "grant-pairing",
                    f"host executed {executed} step(s) but the synchronizer "
                    f"completed {self._completed_steps}",
                )
        # -- token conservation ------------------------------------------
        if self._soc is not None:
            expected_cycles = self._completed_steps * self.sync.cycles_per_sync
            if self._soc.cycle != expected_cycles:
                self._fail(
                    "token-conservation",
                    f"SoC advanced {self._soc.cycle} cycles after "
                    f"{self._completed_steps} step(s); the granted budget is "
                    f"{expected_cycles}",
                )
        if self._bridge is not None:
            self.check_bridge(self._bridge)
        self.check_link()

    # ------------------------------------------------------------------
    # Bridge hooks
    # ------------------------------------------------------------------
    def check_bridge(self, bridge: "RoseBridge") -> None:
        """Hardware-queue conservation: counts and byte totals balance."""
        self.report.bridge_checks += 1
        counters = bridge.counters
        rx_pending = bridge.target_rx_count()
        if counters.rx_enqueued - counters.rx_dequeued != rx_pending:
            self._fail(
                "token-conservation",
                f"RX queue books do not balance: enqueued {counters.rx_enqueued}"
                f" - dequeued {counters.rx_dequeued} != {rx_pending} buffered",
            )
        tx_pending = bridge.pending_tx_count
        if counters.tx_enqueued - counters.tx_dequeued != tx_pending:
            self._fail(
                "token-conservation",
                f"TX queue books do not balance: enqueued {counters.tx_enqueued}"
                f" - dequeued {counters.tx_dequeued} != {tx_pending} buffered",
            )
        bridge.check_conservation()

    # ------------------------------------------------------------------
    # Link / fault-injector hooks
    # ------------------------------------------------------------------
    def check_link(self) -> None:
        """CRC-discard accounting across the watched transports."""
        if not self._transports:
            return
        self.report.link_checks += 1
        discards = sum(
            getattr(transport, "corrupt_packets", 0)
            for transport in self._transports
        )
        if self._injector is None:
            if discards:
                self._fail(
                    "crc-accounting",
                    f"{discards} frame(s) discarded on decode with no fault "
                    "injector configured",
                )
            return
        counters = self._injector.counters
        # A corrupted frame that is also duplicated is discarded twice, so
        # the safe upper bound admits one extra discard per duplication.
        budget = counters.corrupted + counters.duplicated
        if discards > budget:
            self._fail(
                "crc-accounting",
                f"{discards} frame(s) discarded on decode but the injector "
                f"only corrupted {counters.corrupted} "
                f"(+{counters.duplicated} duplicated)",
            )

    def on_injector_step(self, previous: int, current: int) -> None:
        """The fault injector's step counter must never move backwards."""
        self.report.injector_steps += 1
        if current < previous:
            self._fail(
                "injector-monotonic",
                f"fault injector stepped backwards: {previous} -> {current}",
            )
