"""The RoSE BRIDGE: hardware queues + simulation-throttling control unit.

Section 3.2: "RoSE builds on top of the FireSim infrastructure with the
RoSE BRIDGE, which synchronously models I/O between a companion computer
and a flight controller.  The RoSE BRIDGE is exposed to the target SoC as
memory-mapped I/O registers on the system bus ... The bridge itself
consists of hardware queues that buffer data being sent to and from the
SoC, as well as a control unit that can throttle the execution of the RTL
simulation."

Two sides exist:

* the **target side** (:class:`repro.soc.iodev.RoseIoDevice`) reads/writes
  the queues through MMIO registers, and
* the **host side** (the bridge driver) injects environment data packets
  into the RX queue and collects SoC packets from the TX queue between
  simulation steps.

The control unit holds the token budget: the RTL simulation may only
advance ``cycles_per_sync`` cycles per granted synchronization step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.packets import DataPacket
from repro.errors import BridgeError, InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.invariants import InvariantChecker


@dataclass
class BridgeConfig:
    """Hardware queue capacities (bytes of buffered payload)."""

    rx_capacity_bytes: int = 1 << 20  # host -> SoC (holds camera frames)
    tx_capacity_bytes: int = 1 << 16  # SoC -> host (small commands)

    def __post_init__(self) -> None:
        if self.rx_capacity_bytes <= 0 or self.tx_capacity_bytes <= 0:
            raise BridgeError("bridge queue capacities must be positive")


@dataclass
class BridgeCounters:
    """Observability counters (what the artifact's CSV logs track)."""

    rx_enqueued: int = 0
    rx_dequeued: int = 0
    tx_enqueued: int = 0
    tx_dequeued: int = 0
    rx_rejected: int = 0
    steps_granted: int = 0
    #: Payload bytes accepted into each queue over the whole run — the
    #: DMA traffic the obs layer reports (queue-occupancy bytes are the
    #: separate ``_rx_bytes``/``_tx_bytes`` running balances).
    rx_bytes_enqueued: int = 0
    tx_bytes_enqueued: int = 0


class RoseBridge:
    """Queues + control unit shared by the SoC model and the host driver."""

    def __init__(self, config: BridgeConfig | None = None):
        self.config = config or BridgeConfig()
        self._rx: deque[DataPacket] = deque()
        self._tx: deque[DataPacket] = deque()
        self._rx_bytes = 0
        self._tx_bytes = 0
        self.cycles_per_sync = 0
        self.frames_per_sync = 0
        self.counters = BridgeCounters()
        #: Optional conformance hook (repro.core.invariants): when set,
        #: queue conservation is re-verified at every granted step.
        self.invariants: "InvariantChecker | None" = None

    # ------------------------------------------------------------------
    # Control unit
    # ------------------------------------------------------------------
    def set_steps(self, cycles: int, frames: int) -> None:
        """Program the per-synchronization cycle/frame budget."""
        if cycles <= 0 or frames <= 0:
            raise BridgeError(
                f"sync budget must be positive (cycles={cycles}, frames={frames})"
            )
        self.cycles_per_sync = int(cycles)
        self.frames_per_sync = int(frames)

    def grant_step(self) -> int:
        """Record one granted step; returns the cycle budget."""
        if self.cycles_per_sync <= 0:
            raise BridgeError("grant_step before set_steps")
        self.counters.steps_granted += 1
        if self.invariants is not None:
            self.check_conservation()
        return self.cycles_per_sync

    # ------------------------------------------------------------------
    # Host (driver) side
    # ------------------------------------------------------------------
    def host_inject(self, packet: DataPacket) -> bool:
        """Inject a data packet into the RX queue; False if it would
        overflow the hardware buffer (the driver must retry next step)."""
        if not packet.ptype.is_data:
            raise BridgeError(
                f"sync packet {packet.ptype.name} must not enter the data queues"
            )
        size = packet.payload_bytes
        if self._rx_bytes + size > self.config.rx_capacity_bytes:
            self.counters.rx_rejected += 1
            return False
        self._rx.append(packet)
        self._rx_bytes += size
        self.counters.rx_enqueued += 1
        self.counters.rx_bytes_enqueued += size
        return True

    def host_collect(self) -> list[DataPacket]:
        """Drain the TX queue (SoC -> host)."""
        packets = list(self._tx)
        self._tx.clear()
        self._tx_bytes = 0
        self.counters.tx_dequeued += len(packets)
        return packets

    # ------------------------------------------------------------------
    # Target (SoC) side
    # ------------------------------------------------------------------
    def target_rx_count(self) -> int:
        return len(self._rx)

    def target_rx_head_bytes(self) -> int:
        return self._rx[0].payload_bytes if self._rx else 0

    def target_rx_pop(self) -> DataPacket:
        if not self._rx:
            raise BridgeError("RX queue underflow: pop on empty queue")
        packet = self._rx.popleft()
        self._rx_bytes -= packet.payload_bytes
        self.counters.rx_dequeued += 1
        return packet

    def target_tx_space(self) -> int:
        return self.config.tx_capacity_bytes - self._tx_bytes

    def target_tx_push(self, packet: DataPacket) -> None:
        if not packet.ptype.is_data:
            raise BridgeError(
                f"target may only send data packets, not {packet.ptype.name}"
            )
        size = packet.payload_bytes
        if self._tx_bytes + size > self.config.tx_capacity_bytes:
            raise BridgeError(
                "TX queue overflow: the target must check TX_SPACE before pushing"
            )
        self._tx.append(packet)
        self._tx_bytes += size
        self.counters.tx_enqueued += 1
        self.counters.tx_bytes_enqueued += size

    # ------------------------------------------------------------------
    @property
    def rx_buffered_bytes(self) -> int:
        return self._rx_bytes

    @property
    def tx_buffered_bytes(self) -> int:
        return self._tx_bytes

    @property
    def pending_tx_count(self) -> int:
        return len(self._tx)

    # ------------------------------------------------------------------
    def check_conservation(self) -> None:
        """Verify the queues' byte books against the actual queued packets.

        The incremental ``_rx_bytes``/``_tx_bytes`` accounting and the
        enqueue/dequeue counters must always agree with a from-scratch
        recount; a mismatch means a queue was mutated outside the bridge
        protocol.  Raises :class:`~repro.errors.InvariantViolation`.
        """
        rx_actual = sum(packet.payload_bytes for packet in self._rx)
        if rx_actual != self._rx_bytes:
            raise InvariantViolation(
                f"[token-conservation] RX byte books drifted: accounted "
                f"{self._rx_bytes}, queued packets hold {rx_actual}"
            )
        tx_actual = sum(packet.payload_bytes for packet in self._tx)
        if tx_actual != self._tx_bytes:
            raise InvariantViolation(
                f"[token-conservation] TX byte books drifted: accounted "
                f"{self._tx_bytes}, queued packets hold {tx_actual}"
            )
        counters = self.counters
        if counters.rx_enqueued - counters.rx_dequeued != len(self._rx):
            raise InvariantViolation(
                f"[token-conservation] RX counters drifted: enqueued "
                f"{counters.rx_enqueued} - dequeued {counters.rx_dequeued} "
                f"!= {len(self._rx)} buffered"
            )
        if counters.tx_enqueued - counters.tx_dequeued != len(self._tx):
            raise InvariantViolation(
                f"[token-conservation] TX counters drifted: enqueued "
                f"{counters.tx_enqueued} - dequeued {counters.tx_dequeued} "
                f"!= {len(self._tx)} buffered"
            )
