"""Algorithm 1: the lockstep synchronization loop.

The synchronizer is the process in the middle of Figure 5.  Each
synchronization step it

1. polls FireSim for packets the SoC emitted during the previous period
   (and AirSim for pushed data, none in this pull-style deployment),
2. decodes SoC I/O packets into environment RPC calls (sensor requests,
   actuation commands) and transmits the serialized responses back toward
   the bridge,
3. allocates tokens: grants FireSim its cycle budget and grants the
   environment its frame budget,
4. polls both simulators until the step completes, then advances
   simulation time by one synchronization period.

Consequence of this loop (measured in Section 5.5): data crosses between
the simulators only at step boundaries, so a sensor request issued
mid-period is answered no earlier than the next boundary — coarse
synchronization adds artificial latency to the modeled I/O.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import SyncConfig
from repro.core.csvlog import SyncLogger, SyncLogRow
from repro.core.faults import FaultInjector
from repro.core.packets import (
    DataPacket,
    PacketType,
    camera_response,
    depth_response,
    imu_response,
    lidar_response,
    state_response,
    sync_grant,
    sync_set_steps,
    sync_shutdown,
)
from repro.core.invariants import InvariantChecker
from repro.core.timing import StageTimer, wall_clock
from repro.core.trace import Tracer
from repro.core.transport import Transport
from repro.env.rpc import RpcClient
from repro.errors import SyncError, WatchdogError
from repro.obs.declarations import mission_registry
from repro.obs.metrics import MetricsRegistry


@dataclass
class SyncStats:
    """Counters across one mission.

    The fault/resilience columns (``packets_dropped`` … ``sensor_faults``)
    are *views* over the mission's :class:`~repro.obs.metrics.MetricsRegistry`
    — reads pull the counter series, writes advance it — so the legacy
    ``stats.x += 1`` / ``stats.x = total`` call sites and ``fault_summary()``
    (part of the canonical mission payload) keep working unchanged while
    the registry stays the single source of truth.
    """

    steps: int = 0
    packets_from_rtl: int = 0
    packets_to_rtl: int = 0
    camera_requests: int = 0
    imu_requests: int = 0
    depth_requests: int = 0
    lidar_requests: int = 0
    state_requests: int = 0
    target_commands: int = 0
    last_target: tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    #: (sim_time of request) per camera request — latency studies read this.
    camera_request_times: list[float] = field(default_factory=list)
    registry: MetricsRegistry = field(
        default_factory=mission_registry, repr=False, compare=False
    )

    # -- fault / resilience views over the registry ---------------------
    @property
    def packets_dropped(self) -> int:
        """Injected drops (from the fault plan)."""
        return int(self.registry.value("rose_link_faults_total", kind="drop"))

    @packets_dropped.setter
    def packets_dropped(self, total: int) -> None:
        self.registry.advance_to("rose_link_faults_total", total, kind="drop")

    @property
    def packets_corrupted(self) -> int:
        """Injected corruptions."""
        return int(self.registry.value("rose_link_faults_total", kind="corrupt"))

    @packets_corrupted.setter
    def packets_corrupted(self, total: int) -> None:
        self.registry.advance_to("rose_link_faults_total", total, kind="corrupt")

    @property
    def packets_duplicated(self) -> int:
        """Injected duplicates."""
        return int(self.registry.value("rose_link_faults_total", kind="duplicate"))

    @packets_duplicated.setter
    def packets_duplicated(self, total: int) -> None:
        self.registry.advance_to("rose_link_faults_total", total, kind="duplicate")

    @property
    def packets_delayed(self) -> int:
        """Injected delays."""
        return int(self.registry.value("rose_link_faults_total", kind="delay"))

    @packets_delayed.setter
    def packets_delayed(self, total: int) -> None:
        self.registry.advance_to("rose_link_faults_total", total, kind="delay")

    @property
    def corrupt_discards(self) -> int:
        """Frames discarded on decode (synchronizer end; the mission
        runner folds in the FireSim end when it collects results)."""
        return int(self.registry.value("rose_link_crc_discards_total"))

    @corrupt_discards.setter
    def corrupt_discards(self, total: int) -> None:
        self.registry.advance_to("rose_link_crc_discards_total", total)

    @property
    def sync_regrants(self) -> int:
        """SYNC_GRANTs re-issued by the watchdog."""
        return int(self.registry.value("rose_sync_regrants_total"))

    @sync_regrants.setter
    def sync_regrants(self, total: int) -> None:
        self.registry.advance_to("rose_sync_regrants_total", total)

    @property
    def stale_sync_done(self) -> int:
        """SYNC_DONEs for already-finished steps."""
        return int(self.registry.value("rose_sync_done_total", result="stale"))

    @stale_sync_done.setter
    def stale_sync_done(self, total: int) -> None:
        self.registry.advance_to("rose_sync_done_total", total, result="stale")

    @property
    def sensor_faults(self) -> int:
        """Stuck-IMU / camera-blackout responses served."""
        return int(self.registry.value("rose_sync_sensor_faults_total"))

    @sensor_faults.setter
    def sensor_faults(self, total: int) -> None:
        self.registry.advance_to("rose_sync_sensor_faults_total", total)

    def fault_summary(self) -> dict[str, int]:
        """The resilience counters as one dict (reporting/determinism checks)."""
        return {
            "packets_dropped": self.packets_dropped,
            "packets_corrupted": self.packets_corrupted,
            "packets_duplicated": self.packets_duplicated,
            "packets_delayed": self.packets_delayed,
            "corrupt_discards": self.corrupt_discards,
            "sync_regrants": self.sync_regrants,
            "stale_sync_done": self.stale_sync_done,
            "sensor_faults": self.sensor_faults,
        }


class Synchronizer:
    """Drives one environment simulator and one FireSim host in lockstep.

    ``host_service`` is invoked while waiting for the RTL side so an
    in-process FireSim host gets to run; with a true remote host (TCP
    transport to another process/thread) pass ``None`` and the wait polls
    the transport.
    """

    def __init__(
        self,
        rpc: RpcClient,
        transport: Transport,
        sync: SyncConfig,
        host_service: Callable[[], None] | None = None,
        logger: SyncLogger | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        stage_timer: StageTimer | None = None,
        invariants: InvariantChecker | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.rpc = rpc
        self.transport = transport
        self.sync = sync
        self.host_service = host_service
        self.logger = logger
        self.tracer = tracer
        self.faults = faults
        self.stage_timer = stage_timer
        #: Optional conformance hook (repro.core.invariants): grant/ack
        #: pairing, monotonic sim time, and cross-layer token checks.
        self.invariants = invariants
        #: Per-mission metrics registry (repro.obs); shared with the
        #: mission runner, fault injector, and app layer when provided.
        self.obs = registry if registry is not None else mission_registry()
        self.stats = SyncStats(registry=self.obs)
        self.sim_time = 0.0
        self._pending_rtl: list[DataPacket] = []
        self._configured = False
        self._last_imu: dict[str, float] | None = None

    # ------------------------------------------------------------------
    def configure(self) -> None:
        """Program the bridge's per-sync budgets (set_firesim_steps)."""
        self.transport.send(
            sync_set_steps(self.sync.cycles_per_sync, self.sync.frames_per_sync)
        )
        self.obs.inc(
            "rose_link_packets_total",
            direction="to_rtl",
            ptype=PacketType.SYNC_SET_STEPS.name,
        )
        if self.host_service:
            self.host_service()
        self._configured = True

    def shutdown(self) -> None:
        self.transport.send(sync_shutdown())
        self.obs.inc(
            "rose_link_packets_total",
            direction="to_rtl",
            ptype=PacketType.SYNC_SHUTDOWN.name,
        )
        if self.host_service:
            self.host_service()

    # ------------------------------------------------------------------
    def _dispatch_rtl_packet(self, packet: DataPacket) -> None:
        """Translate one SoC I/O packet into environment API calls."""
        self.stats.packets_from_rtl += 1
        ptype = packet.ptype
        self.obs.inc(
            "rose_link_packets_total", direction="from_rtl", ptype=ptype.name
        )
        if self.tracer is not None:
            self.tracer.instant(
                ptype.name, "packet-from-rtl", self.sim_time, track="io"
            )
        if ptype == PacketType.CAMERA_REQ:
            self.stats.camera_requests += 1
            self.stats.camera_request_times.append(self.sim_time)
            image = self.rpc.get_camera_image()
            if self.faults is not None and self.faults.camera_blackout_active():
                # Blacked-out sensor: no pixels, no usable pose metadata —
                # the controller sees a frame that says "centered".
                self.faults.counters.camera_blackout += 1
                self.stats.sensor_faults += 1
                image = dict(
                    image,
                    pixels=bytes(len(image["pixels"])),
                    heading_error=0.0,
                    lateral_offset=0.0,
                )
            self._transmit(
                camera_response(
                    height=image["height"],
                    width=image["width"],
                    timestamp=image["timestamp"],
                    heading_error=image["heading_error"],
                    lateral_offset=image["lateral_offset"],
                    half_width=image["half_width"],
                    pixels=image["pixels"],
                )
            )
        elif ptype == PacketType.IMU_REQ:
            self.stats.imu_requests += 1
            imu = self.rpc.get_imu()
            if self.faults is not None and self.faults.stuck_imu_active():
                # Stuck sensor: keep serving the last healthy reading.
                self.faults.counters.stuck_imu += 1
                self.stats.sensor_faults += 1
                if self._last_imu is not None:
                    imu = self._last_imu
            self._last_imu = imu
            self._transmit(
                imu_response(
                    imu["accel_x"], imu["accel_y"], imu["accel_z"], imu["gyro_z"], imu["timestamp"]
                )
            )
        elif ptype == PacketType.DEPTH_REQ:
            self.stats.depth_requests += 1
            self._transmit(depth_response(self.rpc.get_depth()))
        elif ptype == PacketType.LIDAR_REQ:
            self.stats.lidar_requests += 1
            scan = self.rpc.get_lidar()
            self._transmit(
                lidar_response(scan["fov_rad"], scan["timestamp"], scan["ranges"])
            )
        elif ptype == PacketType.STATE_REQ:
            self.stats.state_requests += 1
            st = self.rpc.get_state()
            self._transmit(
                state_response(
                    st["x"], st["y"], st["z"], st["yaw"], st["u"], st["v"], st["r"],
                    self.sim_time,
                )
            )
        elif ptype == PacketType.TARGET_CMD:
            self.stats.target_commands += 1
            v_forward, v_lateral, yaw_rate, altitude = packet.values
            self.stats.last_target = (v_forward, v_lateral, yaw_rate, altitude)
            self.rpc.send_velocity_target(v_forward, v_lateral, yaw_rate, altitude)
        else:
            raise SyncError(f"unexpected packet from RTL: {ptype.name}")

    def _transmit(self, packet: DataPacket) -> None:
        self.stats.packets_to_rtl += 1
        self.obs.inc(
            "rose_link_packets_total", direction="to_rtl", ptype=packet.ptype.name
        )
        if self.tracer is not None:
            self.tracer.instant(
                packet.ptype.name, "packet-to-rtl", self.sim_time, track="io"
            )
        self.transport.send(packet)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One iteration of Algorithm 1's main loop."""
        if not self._configured:
            raise SyncError("configure() must run before stepping")
        if self.faults is not None:
            self.faults.begin_step(self.stats.steps)
        # Stage accounting (observational only — never alters behaviour):
        # env work is timed inline here, SoC work inside the polling loop,
        # and the remainder of the step is charged to sync overhead.
        timer = self.stage_timer
        env_seconds = 0.0
        if timer is not None:
            step_t0 = wall_clock()
            soc_before = timer.get("soc_step")

        # % Translate IO packets into AirSim APIs %
        rtl_data, self._pending_rtl = self._pending_rtl, []
        if timer is not None:
            t0 = wall_clock()
        for packet in rtl_data:
            self._dispatch_rtl_packet(packet)
        if timer is not None:
            env_seconds += wall_clock() - t0

        # % Allocate tokens to start AirSim and FireSim %
        step_index = self.stats.steps
        if self.invariants is not None:
            self.invariants.on_grant(step_index)
        self.transport.send(sync_grant(step_index))
        self.obs.inc("rose_sync_grants_total")
        self.obs.inc(
            "rose_link_packets_total",
            direction="to_rtl",
            ptype=PacketType.SYNC_GRANT.name,
        )
        if timer is not None:
            t0 = wall_clock()
        self.rpc.continue_for_frames(self.sync.frames_per_sync)
        if timer is not None:
            env_seconds += wall_clock() - t0

        # % Poll simulators until both finish %
        try:
            self._wait_for_sync_done(step_index)
        finally:
            # Mirror injector counters even when the watchdog aborts the
            # step — the failure report must show what the link did.
            self._update_fault_stats()

        if self.tracer is not None:
            self.tracer.span(
                f"sync-step {step_index}",
                "sync",
                self.sim_time,
                self.sync.sync_period_seconds,
                step=step_index,
            )
        self.sim_time += self.sync.sync_period_seconds
        self.stats.steps += 1
        self.obs.inc("rose_sync_steps_total")
        self._update_fault_stats()
        if self.invariants is not None:
            self.invariants.after_step(step_index, self.sim_time)
        if self.logger is not None:
            if timer is not None:
                t0 = wall_clock()
            self._log_row()
            if timer is not None:
                env_seconds += wall_clock() - t0
        if timer is not None:
            total = wall_clock() - step_t0
            soc_seconds = timer.get("soc_step") - soc_before
            timer.add("env_step", env_seconds)
            timer.add("sync_overhead", max(total - env_seconds - soc_seconds, 0.0))

    def _update_fault_stats(self) -> None:
        if self.faults is not None:
            counters = self.faults.counters
            self.stats.packets_dropped = counters.dropped
            self.stats.packets_corrupted = counters.corrupted
            self.stats.packets_duplicated = counters.duplicated
            self.stats.packets_delayed = counters.delayed
        self.stats.corrupt_discards = getattr(self.transport, "corrupt_packets", 0)

    def _regrant(self, step_index: int, regrants: int) -> int:
        """Watchdog retry: re-issue the grant for a step that went silent."""
        if regrants >= self.sync.max_regrants:
            self.obs.inc("rose_sync_watchdog_fires_total")
            raise WatchdogError(
                f"step {step_index} incomplete after {regrants} regrant(s); "
                "link presumed dead"
            )
        self.stats.sync_regrants += 1
        if self.invariants is not None:
            self.invariants.on_grant(step_index)
        self.transport.send(sync_grant(step_index))
        self.obs.inc("rose_sync_grants_total")
        self.obs.inc(
            "rose_link_packets_total",
            direction="to_rtl",
            ptype=PacketType.SYNC_GRANT.name,
        )
        return regrants + 1

    def _wait_for_sync_done(self, step_index: int) -> None:
        """Poll for this step's SYNC_DONE, surviving a lossy link.

        A lost SYNC_GRANT or SYNC_DONE is recovered by re-issuing the
        grant (the host deduplicates and re-acknowledges executed steps);
        after ``max_regrants`` unanswered re-issues — or, for a remote
        host, ``sync_done_timeout_s`` of wall-clock silence — the watchdog
        raises :class:`WatchdogError`, which the mission runner converts
        into a structured failure.
        """
        # Watchdog deadlines are wall-clock by design: they bound *host*
        # silence on a dead link, never simulated behaviour.
        deadline = time.monotonic() + self.sync.sync_done_timeout_s  # repro: allow[DET002]
        regrant_deadline = time.monotonic() + self.sync.regrant_timeout_s  # repro: allow[DET002]
        regrants = 0
        timer = self.stage_timer
        while True:
            if self.host_service:
                if timer is not None:
                    t0 = wall_clock()
                    self.host_service()
                    timer.add("soc_step", wall_clock() - t0)
                else:
                    self.host_service()
            done = False
            progressed = False
            for packet in self.transport.drain():
                progressed = True
                if packet.ptype == PacketType.SYNC_DONE:
                    got_index = int(packet.values[0])
                    if got_index == step_index:
                        done = True
                        self.obs.inc("rose_sync_done_total", result="ok")
                        if self.invariants is not None:
                            self.invariants.on_done(got_index)
                    elif got_index < step_index:
                        # A duplicate/delayed acknowledgement of a step we
                        # already finished (regrant aftermath) — ignore.
                        self.stats.stale_sync_done += 1
                        if self.invariants is not None:
                            self.invariants.on_done(got_index, stale=True)
                    else:
                        raise SyncError(
                            f"out-of-order SYNC_DONE: expected {step_index}, got {got_index}"
                        )
                elif packet.ptype.is_data:
                    # Emitted by the SoC during this period; handled at the
                    # start of the next loop iteration (Algorithm 1).
                    self._pending_rtl.append(packet)
                else:
                    raise SyncError(f"unexpected packet at synchronizer: {packet.ptype.name}")
            if done:
                return
            if self.host_service:
                if progressed:
                    continue
                # An in-process host finishes all possible work per service
                # call, so an empty drain means the grant or its SYNC_DONE
                # was lost on the wire.
                regrants = self._regrant(step_index, regrants)
                continue
            now = time.monotonic()  # repro: allow[DET002] watchdog, host-time by design
            if now > deadline:
                self.obs.inc("rose_sync_watchdog_fires_total")
                raise WatchdogError(
                    f"FireSim did not complete step {step_index} within "
                    f"{self.sync.sync_done_timeout_s:g}s"
                )
            if now > regrant_deadline:
                regrants = self._regrant(step_index, regrants)
                regrant_deadline = now + self.sync.regrant_timeout_s
            time.sleep(0.0002)

    def _log_row(self) -> None:
        st = self.rpc.get_state()
        course = self.rpc.get_course_state()
        target = self.stats.last_target
        self.logger.log(
            SyncLogRow(
                step=self.stats.steps,
                sim_time=self.sim_time,
                x=st["x"],
                y=st["y"],
                z=st["z"],
                yaw=st["yaw"],
                speed=st["speed"],
                course_s=course["s"],
                course_d=course["d"],
                collisions=self.rpc.get_collision_count(),
                camera_requests=self.stats.camera_requests,
                imu_requests=self.stats.imu_requests,
                depth_requests=self.stats.depth_requests,
                target_v_forward=target[0],
                target_v_lateral=target[1],
                target_yaw_rate=target[2],
                packets_dropped=self.stats.packets_dropped,
                packets_corrupted=self.stats.packets_corrupted,
                retries=self.stats.sync_regrants,
            )
        )

    # ------------------------------------------------------------------
    def run(
        self,
        max_sim_time: float,
        stop_condition: Callable[[], bool] | None = None,
    ) -> None:
        """Run the lockstep loop until ``max_sim_time`` or the condition."""
        if max_sim_time <= 0:
            raise SyncError("max_sim_time must be positive")
        while self.sim_time < max_sim_time:
            self.step()
            if stop_condition is not None and stop_condition():
                return
