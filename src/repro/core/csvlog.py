"""CSV logging of synchronizer state.

The artifact's experiments produce "CSV logs from the synchronizer,
tracking UAV dynamics, sensing requests, and control targets" (Artifact
appendix A.2).  :class:`SyncLogger` records one row per synchronization
step with exactly those column families and serializes to CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field


@dataclass
class SyncLogRow:
    """One synchronization step's log record."""

    step: int
    sim_time: float
    x: float
    y: float
    z: float
    yaw: float
    speed: float
    course_s: float
    course_d: float
    collisions: int
    camera_requests: int
    imu_requests: int
    depth_requests: int
    target_v_forward: float
    target_v_lateral: float
    target_yaw_rate: float
    # Fault / resilience columns (all zero on a healthy link).
    packets_dropped: int = 0
    packets_corrupted: int = 0
    retries: int = 0

    FIELDS = (
        "step",
        "sim_time",
        "x",
        "y",
        "z",
        "yaw",
        "speed",
        "course_s",
        "course_d",
        "collisions",
        "camera_requests",
        "imu_requests",
        "depth_requests",
        "target_v_forward",
        "target_v_lateral",
        "target_yaw_rate",
        "packets_dropped",
        "packets_corrupted",
        "retries",
    )

    def as_tuple(self) -> tuple[float, ...]:
        return tuple(getattr(self, name) for name in self.FIELDS)


@dataclass
class SyncLogger:
    """Accumulates rows; renders or writes CSV on demand."""

    rows: list[SyncLogRow] = field(default_factory=list)

    def log(self, row: SyncLogRow) -> None:
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(SyncLogRow.FIELDS)
        for row in self.rows:
            writer.writerow(row.as_tuple())
        return buffer.getvalue()

    def write(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    @staticmethod
    def read(path: str) -> "SyncLogger":
        logger = SyncLogger()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for record in reader:
                logger.log(
                    SyncLogRow(
                        step=int(record["step"]),
                        sim_time=float(record["sim_time"]),
                        x=float(record["x"]),
                        y=float(record["y"]),
                        z=float(record["z"]),
                        yaw=float(record["yaw"]),
                        speed=float(record["speed"]),
                        course_s=float(record["course_s"]),
                        course_d=float(record["course_d"]),
                        collisions=int(record["collisions"]),
                        camera_requests=int(record["camera_requests"]),
                        imu_requests=int(record["imu_requests"]),
                        depth_requests=int(record["depth_requests"]),
                        target_v_forward=float(record["target_v_forward"]),
                        target_v_lateral=float(record["target_v_lateral"]),
                        target_yaw_rate=float(record["target_yaw_rate"]),
                        # Absent in logs written before fault injection
                        # existed; read those as fault-free.
                        packets_dropped=int(record.get("packets_dropped", 0) or 0),
                        packets_corrupted=int(record.get("packets_corrupted", 0) or 0),
                        retries=int(record.get("retries", 0) or 0),
                    )
                )
        return logger
