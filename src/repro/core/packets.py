"""The RoSE packet protocol.

Section 3.4.1: "TCP Packets are used to transmit serialized synchronization
and data packets.  Packets consist of a header, containing the packet type
and number of bytes, as well as a payload containing the serialized
contents of the message."

Two packet families exist:

* **Synchronization packets** "communicate information about the simulation
  state, such as the number of cycles FireSim can advance every
  synchronization, and communicate with RoSE BRIDGE but not the modeled
  SoC".
* **Data packets** "encode sensor and actuator data" and "are the only
  packets that are visible to the simulated SoC".

Wire format: a fixed 8-byte header ``(magic u16, type u8, crc u8,
length u32)`` followed by ``length`` payload bytes.  Typed payloads are
struct-packed little-endian.  The header's third byte is a CRC over the
packet type and payload (the low byte of CRC-32): a frame corrupted in
flight fails :func:`decode_packet` with a :class:`PacketError` and the
transports discard it instead of delivering garbage.  Camera responses
carry the image as a raw uint8 payload after a fixed metadata prefix; the
metadata includes the capture-time course coordinates (the "image
metadata" the behavioural classifier consumes — see DESIGN.md).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import PacketError

MAGIC = 0x5253  # "RS"
HEADER_FORMAT = "<HBBI"
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)

#: Hard cap on payload size; a corrupted length field must not allocate
#: unbounded buffers on the receive path.
MAX_PAYLOAD = 1 << 22


class PacketType(IntEnum):
    """All packet types; values below 0x40 are synchronization packets."""

    # -- synchronization (bridge control, invisible to the SoC) ---------
    SYNC_SET_STEPS = 0x01  # cycles the RTL sim may advance per sync
    SYNC_GRANT = 0x02  # grant one synchronization step
    SYNC_DONE = 0x03  # RTL finished its granted cycles
    SYNC_RESET = 0x04
    SYNC_SHUTDOWN = 0x05
    # -- data (sensor / actuator traffic, visible to the SoC) -----------
    IMU_REQ = 0x40
    IMU_RESP = 0x41
    CAMERA_REQ = 0x42
    CAMERA_RESP = 0x43
    DEPTH_REQ = 0x44
    DEPTH_RESP = 0x45
    STATE_REQ = 0x46
    STATE_RESP = 0x47
    TARGET_CMD = 0x48
    LIDAR_REQ = 0x49
    LIDAR_RESP = 0x4A

    @property
    def is_sync(self) -> bool:
        return self.value < 0x40

    @property
    def is_data(self) -> bool:
        return not self.is_sync


#: Lidar response: metadata prefix then raw float32 ranges.
LIDAR_META_FORMAT = "<Hdd"  # beam count, fov_rad, timestamp
LIDAR_META_SIZE = struct.calcsize(LIDAR_META_FORMAT)

#: Camera response: metadata prefix then raw uint8 pixels.
CAMERA_META_FORMAT = "<HHd3d"  # height, width, timestamp, heading_err, lat_off, half_width
CAMERA_META_SIZE = struct.calcsize(CAMERA_META_FORMAT)

#: struct formats for fixed-layout payloads.  Total over PacketType (lint
#: rule PROTO001): the two raw-carrying responses list their metadata
#: prefix here and are special-cased in encode/decode for the raw tail.
_PAYLOAD_FORMATS: dict[PacketType, str] = {
    PacketType.SYNC_SET_STEPS: "<QI",  # cycles per sync, frames per sync
    PacketType.SYNC_GRANT: "<Q",  # step index
    PacketType.SYNC_DONE: "<QQ",  # step index, cycles executed
    PacketType.SYNC_RESET: "",
    PacketType.SYNC_SHUTDOWN: "",
    PacketType.IMU_REQ: "",
    PacketType.IMU_RESP: "<5d",  # ax, ay, az, gyro_z, timestamp
    PacketType.CAMERA_REQ: "",
    PacketType.CAMERA_RESP: CAMERA_META_FORMAT,  # + raw uint8 pixels
    PacketType.DEPTH_REQ: "",
    PacketType.DEPTH_RESP: "<d",
    PacketType.STATE_REQ: "",
    PacketType.STATE_RESP: "<8d",  # x, y, z, yaw, u, v, r, timestamp
    PacketType.TARGET_CMD: "<4d",  # v_forward, v_lateral, yaw_rate, altitude
    PacketType.LIDAR_REQ: "",
    PacketType.LIDAR_RESP: LIDAR_META_FORMAT,  # + raw float32 ranges
}


#: (payload size, field count) per fixed-layout type — lets
#: ``payload_bytes`` answer without serializing.  The raw-carrying
#: responses add their variable tail on top of the metadata size.
_PAYLOAD_SIZES: dict[PacketType, tuple[int, int]] = {
    ptype: (struct.calcsize(fmt), len(struct.unpack(fmt, bytes(struct.calcsize(fmt)))))
    for ptype, fmt in _PAYLOAD_FORMATS.items()
}


@dataclass(frozen=True)
class DataPacket:
    """A decoded packet: type plus either typed fields or raw payload."""

    ptype: PacketType
    values: tuple[float, ...] = ()
    raw: bytes = b""

    @property
    def payload_bytes(self) -> int:
        # Size from the layout table when the shape is well-formed (the
        # overwhelmingly common case) — a full encode just to measure a
        # packet is pure overhead on the SoC's MMIO cost path.  Anything
        # irregular falls through to encode_packet for its exact error.
        layout = _PAYLOAD_SIZES.get(self.ptype)
        if layout is not None and len(self.values) == layout[1]:
            if self.ptype is PacketType.CAMERA_RESP:
                if len(self.raw) == int(self.values[0]) * int(self.values[1]):
                    return layout[0] + len(self.raw)
            elif self.ptype is PacketType.LIDAR_RESP:
                if len(self.raw) == int(self.values[0]) * 4:
                    return layout[0] + len(self.raw)
            elif not self.raw:
                return layout[0]
        return len(encode_packet(self)) - HEADER_SIZE


def encode_packet(packet: DataPacket) -> bytes:
    """Serialize a packet to wire bytes (header + payload)."""
    ptype = packet.ptype
    if ptype == PacketType.CAMERA_RESP:
        if len(packet.values) != 6:
            raise PacketError(
                "CAMERA_RESP requires (height, width, timestamp, heading_err, "
                f"lat_off, half_width); got {len(packet.values)} values"
            )
        height, width = int(packet.values[0]), int(packet.values[1])
        if len(packet.raw) != height * width:
            raise PacketError(
                f"CAMERA_RESP pixel payload is {len(packet.raw)} bytes; "
                f"expected {height}x{width}={height * width}"
            )
        payload = struct.pack(CAMERA_META_FORMAT, *packet.values) + packet.raw
    elif ptype == PacketType.LIDAR_RESP:
        if len(packet.values) != 3:
            raise PacketError(
                "LIDAR_RESP requires (beam_count, fov_rad, timestamp); "
                f"got {len(packet.values)} values"
            )
        beams = int(packet.values[0])
        if len(packet.raw) != beams * 4:
            raise PacketError(
                f"LIDAR_RESP range payload is {len(packet.raw)} bytes; "
                f"expected {beams} float32 beams = {beams * 4}"
            )
        payload = struct.pack(LIDAR_META_FORMAT, *packet.values) + packet.raw
    else:
        try:
            fmt = _PAYLOAD_FORMATS[ptype]
        except KeyError:
            raise PacketError(f"no payload format for packet type {ptype!r}") from None
        try:
            payload = struct.pack(fmt, *packet.values)
        except struct.error as exc:
            raise PacketError(f"cannot pack {ptype.name} payload: {exc}") from exc
        if packet.raw:
            raise PacketError(f"{ptype.name} does not carry a raw payload")
    if len(payload) > MAX_PAYLOAD:
        raise PacketError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    crc = payload_crc(int(ptype), payload)
    header = struct.pack(HEADER_FORMAT, MAGIC, int(ptype), crc, len(payload))
    return header + payload


def payload_crc(type_value: int, payload: bytes) -> int:
    """8-bit integrity check carried in the header (low byte of CRC-32,
    mixed with the type so a corrupted type byte is also caught)."""
    return (zlib.crc32(payload) ^ type_value) & 0xFF


def decode_header(data: bytes) -> tuple[PacketType, int]:
    """Parse a packet header; returns (type, payload length)."""
    if len(data) < HEADER_SIZE:
        raise PacketError(f"header truncated: {len(data)} < {HEADER_SIZE} bytes")
    magic, type_value, _flags, length = struct.unpack(HEADER_FORMAT, data[:HEADER_SIZE])
    if magic != MAGIC:
        raise PacketError(f"bad magic 0x{magic:04x}")
    try:
        ptype = PacketType(type_value)
    except ValueError:
        raise PacketError(f"unknown packet type 0x{type_value:02x}") from None
    if length > MAX_PAYLOAD:
        raise PacketError(f"declared payload of {length} bytes exceeds MAX_PAYLOAD")
    return ptype, length


def decode_packet(data: bytes) -> DataPacket:
    """Deserialize one packet from wire bytes (CRC-checked)."""
    ptype, length = decode_header(data)
    payload = data[HEADER_SIZE : HEADER_SIZE + length]
    if len(payload) != length:
        raise PacketError(
            f"payload truncated: have {len(payload)}, header declares {length}"
        )
    crc = data[3]
    if crc != payload_crc(int(ptype), bytes(payload)):
        raise PacketError(f"{ptype.name} payload CRC mismatch")
    if ptype == PacketType.CAMERA_RESP:
        if length < CAMERA_META_SIZE:
            raise PacketError("CAMERA_RESP payload shorter than its metadata")
        values = struct.unpack(CAMERA_META_FORMAT, payload[:CAMERA_META_SIZE])
        pixels = payload[CAMERA_META_SIZE:]
        height, width = int(values[0]), int(values[1])
        if len(pixels) != height * width:
            raise PacketError(
                f"CAMERA_RESP pixels: {len(pixels)} bytes for {height}x{width}"
            )
        return DataPacket(ptype=ptype, values=values, raw=pixels)
    if ptype == PacketType.LIDAR_RESP:
        if length < LIDAR_META_SIZE:
            raise PacketError("LIDAR_RESP payload shorter than its metadata")
        values = struct.unpack(LIDAR_META_FORMAT, payload[:LIDAR_META_SIZE])
        ranges = payload[LIDAR_META_SIZE:]
        beams = int(values[0])
        if len(ranges) != beams * 4:
            raise PacketError(
                f"LIDAR_RESP ranges: {len(ranges)} bytes for {beams} beams"
            )
        return DataPacket(ptype=ptype, values=values, raw=ranges)
    fmt = _PAYLOAD_FORMATS[ptype]
    expected = struct.calcsize(fmt)
    if length != expected:
        raise PacketError(
            f"{ptype.name} payload is {length} bytes, expected {expected}"
        )
    return DataPacket(ptype=ptype, values=struct.unpack(fmt, payload) if fmt else ())


# ---------------------------------------------------------------------------
# Typed constructors (the vocabulary the rest of the system speaks)
# ---------------------------------------------------------------------------
def sync_set_steps(cycles: int, frames: int) -> DataPacket:
    return DataPacket(PacketType.SYNC_SET_STEPS, (int(cycles), int(frames)))


def sync_grant(step_index: int) -> DataPacket:
    return DataPacket(PacketType.SYNC_GRANT, (int(step_index),))


def sync_done(step_index: int, cycles_executed: int) -> DataPacket:
    return DataPacket(PacketType.SYNC_DONE, (int(step_index), int(cycles_executed)))


def sync_reset() -> DataPacket:
    return DataPacket(PacketType.SYNC_RESET)


def sync_shutdown() -> DataPacket:
    return DataPacket(PacketType.SYNC_SHUTDOWN)


def imu_request() -> DataPacket:
    return DataPacket(PacketType.IMU_REQ)


def imu_response(ax: float, ay: float, az: float, gyro_z: float, timestamp: float) -> DataPacket:
    return DataPacket(PacketType.IMU_RESP, (ax, ay, az, gyro_z, timestamp))


def camera_request() -> DataPacket:
    return DataPacket(PacketType.CAMERA_REQ)


def camera_response(
    height: int,
    width: int,
    timestamp: float,
    heading_error: float,
    lateral_offset: float,
    half_width: float,
    pixels: bytes,
) -> DataPacket:
    return DataPacket(
        PacketType.CAMERA_RESP,
        (int(height), int(width), timestamp, heading_error, lateral_offset, half_width),
        raw=bytes(pixels),
    )


def depth_request() -> DataPacket:
    return DataPacket(PacketType.DEPTH_REQ)


def depth_response(depth: float) -> DataPacket:
    return DataPacket(PacketType.DEPTH_RESP, (float(depth),))


def state_request() -> DataPacket:
    return DataPacket(PacketType.STATE_REQ)


def state_response(
    x: float, y: float, z: float, yaw: float, u: float, v: float, r: float, timestamp: float
) -> DataPacket:
    return DataPacket(PacketType.STATE_RESP, (x, y, z, yaw, u, v, r, timestamp))


def target_command(
    v_forward: float, v_lateral: float, yaw_rate: float, altitude: float
) -> DataPacket:
    return DataPacket(PacketType.TARGET_CMD, (v_forward, v_lateral, yaw_rate, altitude))


def lidar_request() -> DataPacket:
    return DataPacket(PacketType.LIDAR_REQ)


def lidar_response(fov_rad: float, timestamp: float, ranges: bytes) -> DataPacket:
    """``ranges`` is a packed float32 array (one value per beam)."""
    if len(ranges) % 4 != 0:
        raise PacketError("lidar ranges must be a packed float32 array")
    beams = len(ranges) // 4
    return DataPacket(
        PacketType.LIDAR_RESP, (beams, float(fov_rad), float(timestamp)), raw=bytes(ranges)
    )
