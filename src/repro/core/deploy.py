"""Deployment configurations (Table 4) and their performance models.

The paper evaluates two deployments — an on-premise desktop/server pair
and an AWS cloud pair (g4dn.2xlarge for AirSim, f1.2xlarge for FireSim).
Table 4 is descriptive; what the throughput experiments (Figures 15/16)
consume is each deployment's :class:`~repro.soc.firesim.HostPerfParams`.
The synchronizer "executes on the FireSim machine to reduce latency to
the RoSE BRIDGE", so the per-sync overhead is dominated by the
environment-RPC round trip plus driver polling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.firesim import HostPerfParams


@dataclass(frozen=True)
class MachineSpec:
    """One machine in a deployment (a Table 4 column)."""

    role: str  # "airsim" | "firesim"
    cpu: str
    frequency_ghz: float
    gpu: str | None
    fpga: str | None
    os: str
    instance: str | None = None


@dataclass(frozen=True)
class Deployment:
    """A full deployment: both machines plus the performance model."""

    name: str
    airsim: MachineSpec
    firesim: MachineSpec
    perf: HostPerfParams

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(field, airsim value, firesim value) rows — Table 4's layout."""
        def fmt(spec: MachineSpec) -> dict[str, str]:
            return {
                "Instance": spec.instance or "-",
                "CPU": spec.cpu,
                "Frequency": f"@{spec.frequency_ghz}GHz",
                "GPU": spec.gpu or "N/A",
                "FPGA": spec.fpga or "N/A",
                "OS": spec.os,
            }

        left, right = fmt(self.airsim), fmt(self.firesim)
        return [(key, left[key], right[key]) for key in left]


ON_PREMISE = Deployment(
    name="on-premise",
    airsim=MachineSpec(
        role="airsim",
        cpu="Intel Core i7-3930K",
        frequency_ghz=3.2,
        gpu="GeForce GTX TITAN X",
        fpga=None,
        os="Ubuntu 18.04.6 LTS",
    ),
    firesim=MachineSpec(
        role="firesim",
        cpu="Intel Xeon Gold 6242",
        frequency_ghz=2.8,
        gpu=None,
        fpga="Xilinx U250",
        os="Ubuntu 18.04.6 LTS",
    ),
    # Per-sync overhead is dominated by the FireSim scheduler polling the
    # RoSE bridge plus the synchronizer's RPC round trips (Section 5.5
    # notes the scheduler-polling bottleneck at fine granularity).
    perf=HostPerfParams(
        name="on-premise",
        fpga_sim_rate_mhz=30.0,
        sync_overhead_s=0.12,
        env_frame_wall_s=8.0e-3,
    ),
)

CLOUD_AWS = Deployment(
    name="cloud-aws",
    airsim=MachineSpec(
        role="airsim",
        cpu="Intel Xeon Platinum 8259CL",
        frequency_ghz=2.5,
        gpu="Tesla T4",
        fpga=None,
        os="Ubuntu 18.04.6 LTS",
        instance="g4dn.2xlarge",
    ),
    firesim=MachineSpec(
        role="firesim",
        cpu="Intel Xeon E5-2686",
        frequency_ghz=2.3,
        gpu=None,
        fpga="Xilinx VU9P",
        os="CentOS 7.9.2009",
        instance="f1.2xlarge",
    ),
    # Cross-instance RPC adds latency; VU9P F1 sims run a bit slower.
    perf=HostPerfParams(
        name="cloud-aws",
        fpga_sim_rate_mhz=25.0,
        sync_overhead_s=0.20,
        env_frame_wall_s=10.0e-3,
    ),
)

DEPLOYMENTS = {d.name: d for d in (ON_PREMISE, CLOUD_AWS)}


def deployment(name: str) -> Deployment:
    try:
        return DEPLOYMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown deployment {name!r}; available: {sorted(DEPLOYMENTS)}"
        ) from None
