"""Wall-clock stage accounting for one co-simulation run.

The sweep engine reports where a mission's *host* time goes, split along
the co-simulation's structural seams (Figure 3 / Algorithm 1):

* ``env_step``  — environment work: sensor RPCs served for the SoC
  (camera render, IMU reads, ...), frame stepping, and trajectory/CSV
  state reads;
* ``soc_step``  — FireSim-host work: bridge servicing plus stepping the
  SoC cycle models by the granted budget (the target program runs here);
* ``sync_overhead`` — everything else inside the lockstep loop: packet
  (de)serialization, grant/done bookkeeping, watchdog polling;
* ``inference`` — perception + DNN-session work, measured at the
  :class:`~repro.app.perception.Perception` / ``InferenceSession`` choke
  points.  Inference executes *inside* the SoC step (the target program
  calls it), so this stage is an informational subset of ``soc_step``,
  not an additive fourth bucket.

Timing is observational only: a :class:`StageTimer` never feeds back into
simulated behaviour, so instrumented runs stay bit-identical to
uninstrumented ones.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports core)
    from repro.app.perception import Perception
    from repro.core.packets import DataPacket
    from repro.dnn.calibrated import TrailInference


def wall_clock() -> float:
    """Monotonic wall-clock seconds — the blessed read for stage accounting.

    Simulation code must not read host time directly (lint rule DET002):
    results would depend on host speed.  Code charging wall time to a
    :class:`StageTimer` imports this instead, which keeps every
    wall-clock read in the one module that is allowed to make them.
    """
    return perf_counter()


class StageTimer:
    """Accumulates wall-clock seconds (and call counts) per stage."""

    #: Canonical stage names, in reporting order.
    STAGES = ("env_step", "soc_step", "sync_overhead", "inference")

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {stage: 0.0 for stage in self.STAGES}
        self.counts: dict[str, int] = {stage: 0 for stage in self.STAGES}

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time into ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def get(self, stage: str) -> float:
        return self.seconds.get(stage, 0.0)

    def asdict(self) -> dict[str, float]:
        """Stage -> seconds, in canonical order (extra stages last)."""
        ordered = {stage: self.seconds.get(stage, 0.0) for stage in self.STAGES}
        for stage, value in self.seconds.items():
            if stage not in ordered:
                ordered[stage] = value
        return ordered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self.asdict().items())
        return f"StageTimer({parts})"


def merge_timings(timings: Iterable[dict[str, float] | None]) -> dict[str, float]:
    """Sum an iterable of per-mission stage dicts (``None`` entries skipped).

    The benchmarks use this to fold a whole sweep's missions into one
    breakdown for the pytest-benchmark JSON.
    """
    merged: dict[str, float] = {stage: 0.0 for stage in StageTimer.STAGES}
    for timing in timings:
        if not timing:
            continue
        for stage, seconds in timing.items():
            merged[stage] = merged.get(stage, 0.0) + seconds
    return merged


class TimedPerception:
    """Wrap a :class:`~repro.app.perception.Perception`, timing each call.

    Behaviourally transparent: delegates ``infer_packet`` unchanged and
    charges the wall time to the timer's ``inference`` stage.
    """

    def __init__(self, inner: "Perception", timer: StageTimer):
        self.inner = inner
        self.timer = timer

    def infer_packet(self, packet: "DataPacket") -> "TrailInference":
        t0 = perf_counter()
        try:
            return self.inner.infer_packet(packet)
        finally:
            self.timer.add("inference", perf_counter() - t0)

    def __getattr__(self, name: str) -> Any:
        # Expose the wrapped perception's attributes (e.g. ``profile``).
        return getattr(self.inner, name)
