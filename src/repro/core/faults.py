"""Deterministic fault injection for the co-simulation link.

The synchronizer <-> bridge-driver link of Section 3.4.1 is a real
network link in the deployed system, and real links drop, corrupt,
duplicate, and delay packets.  This module provides the declarative
description of such faults and the machinery that injects them:

* :class:`FaultPlan` — an immutable, JSON-serializable description of the
  faults one run should experience: per-packet-type probabilities
  (:class:`FaultRule`), scheduled one-shot windows (:class:`ScheduledFault`,
  e.g. "drop every CAMERA_RESP in steps 40-60"), and sensor faults
  (stuck-value IMU, blacked-out camera) applied at the synchronizer.
* :class:`FaultInjector` — the per-run mutable state: a seeded RNG, the
  current synchronization step, and :class:`FaultCounters`.  The same plan
  and seed reproduce byte-identical fault decisions across runs, because
  the packet stream itself is deterministic.

Wire faults are applied by :class:`repro.core.transport.FaultyTransport`,
which consults the injector on every ``send``; sensor faults are applied
by the :class:`~repro.core.synchronizer.Synchronizer` when it services
sensor requests.  Faulting synchronization packet types (``SYNC_GRANT``,
``SYNC_DONE``) is permitted — it exercises the watchdog/regrant path —
but dropping ``SYNC_SET_STEPS`` breaks bridge configuration, exactly as
it would in the real deployment.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.packets import HEADER_SIZE, PacketType
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.invariants import InvariantChecker
    from repro.obs.metrics import MetricsRegistry

#: The data packet types carrying sensor responses (synchronizer -> SoC).
SENSOR_RESPONSE_TYPES = (
    PacketType.IMU_RESP,
    PacketType.CAMERA_RESP,
    PacketType.DEPTH_RESP,
    PacketType.STATE_RESP,
    PacketType.LIDAR_RESP,
)

#: Scheduled fault kinds: wire-level windows and sensor faults.
SCHEDULED_KINDS = ("drop", "corrupt", "stuck_imu", "camera_blackout")


def _coerce_ptype(value: object) -> PacketType:
    if isinstance(value, PacketType):
        return value
    if isinstance(value, int):
        return PacketType(value)
    if isinstance(value, str):
        try:
            return PacketType[value]
        except KeyError:
            raise ConfigError(f"unknown packet type name {value!r}") from None
    raise ConfigError(f"cannot interpret {value!r} as a packet type")


@dataclass(frozen=True)
class FaultRule:
    """Independent per-packet fault probabilities for one packet type.

    ``delay_steps`` is how many synchronization steps a delayed packet is
    held before it reaches the wire (the delay fault fires with
    probability ``delay``).
    """

    ptype: PacketType
    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_steps: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "ptype", _coerce_ptype(self.ptype))
        for name in ("drop", "corrupt", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} probability must be in [0, 1], got {p}")
        if self.delay_steps < 1:
            raise ConfigError("delay_steps must be at least 1")


@dataclass(frozen=True)
class ScheduledFault:
    """A one-shot fault active for steps in ``[start_step, end_step)``.

    ``kind`` is one of :data:`SCHEDULED_KINDS`; the wire kinds (``drop``,
    ``corrupt``) require a ``ptype``, the sensor kinds (``stuck_imu``,
    ``camera_blackout``) ignore it.
    """

    kind: str
    start_step: int
    end_step: int
    ptype: PacketType | None = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULED_KINDS:
            raise ConfigError(
                f"scheduled fault kind must be one of {SCHEDULED_KINDS}, got {self.kind!r}"
            )
        if self.start_step < 0 or self.end_step <= self.start_step:
            raise ConfigError(
                f"scheduled fault window [{self.start_step}, {self.end_step}) is empty"
            )
        if self.kind in ("drop", "corrupt"):
            if self.ptype is None:
                raise ConfigError(f"scheduled {self.kind!r} fault requires a packet type")
            object.__setattr__(self, "ptype", _coerce_ptype(self.ptype))

    def active(self, step: int) -> bool:
        return self.start_step <= step < self.end_step


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seed-reproducible fault description for one run."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    scheduled: tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rules",
            tuple(r if isinstance(r, FaultRule) else FaultRule(**r) for r in self.rules),
        )
        object.__setattr__(
            self,
            "scheduled",
            tuple(
                s if isinstance(s, ScheduledFault) else ScheduledFault(**s)
                for s in self.scheduled
            ),
        )
        seen = set()
        for rule in self.rules:
            if rule.ptype in seen:
                raise ConfigError(f"duplicate fault rule for {rule.ptype.name}")
            seen.add(rule.ptype)

    # -- convenience constructors --------------------------------------
    @classmethod
    def sensor_response_drop(cls, probability: float, seed: int = 0) -> "FaultPlan":
        """Drop each sensor-response packet independently with ``probability``."""
        return cls(
            seed=seed,
            rules=tuple(
                FaultRule(ptype=ptype, drop=probability)
                for ptype in SENSOR_RESPONSE_TYPES
            ),
        )

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        for rule in data["rules"]:
            rule["ptype"] = PacketType(rule["ptype"]).name
        for fault in data["scheduled"]:
            if fault["ptype"] is not None:
                fault["ptype"] = PacketType(fault["ptype"]).name
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {"seed", "rules", "scheduled"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown fault plan fields: {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(data.get("rules", ())),
            scheduled=tuple(data.get("scheduled", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)


def load_fault_plan(spec: str) -> FaultPlan:
    """Parse a fault plan from an inline JSON object or a file path."""
    spec = spec.strip()
    if spec.startswith("{"):
        return FaultPlan.from_json(spec)
    try:
        with open(spec) as handle:
            return FaultPlan.from_json(handle.read())
    except OSError as exc:
        raise ConfigError(f"cannot read fault plan file {spec!r}: {exc}") from exc


@dataclass
class FaultCounters:
    """Injection counters (what the plan actually did to this run)."""

    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    delayed: int = 0
    stuck_imu: int = 0
    camera_blackout: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(asdict(self))


@dataclass(frozen=True)
class FaultDecision:
    """What to do with one outbound packet."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay_steps: int = 0


_NO_FAULT = FaultDecision()


class FaultInjector:
    """Per-run fault state: seeded RNG, current step, counters.

    One injector is shared by every :class:`FaultyTransport` wrapper and
    the synchronizer of a run, so the RNG is consumed in the (deterministic)
    order packets cross the link.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters = FaultCounters()
        self.step = 0
        self._rng = random.Random(plan.seed)
        self._rules = {rule.ptype: rule for rule in plan.rules}
        #: Optional conformance hook (repro.core.invariants): verifies the
        #: step counter only ever moves forward.
        self.invariants: "InvariantChecker | None" = None
        #: Optional observability hook (repro.obs): injections counted by
        #: kind and packet type at the moment they are decided.  Purely
        #: observational — no RNG is consumed recording them.
        self.registry: "MetricsRegistry | None" = None

    def _record(self, kind: str, ptype: PacketType) -> None:
        if self.registry is not None:
            self.registry.inc(
                "rose_faults_injected_total", kind=kind, ptype=ptype.name
            )

    def begin_step(self, step_index: int) -> None:
        """Advance the injector's notion of the current sync step."""
        if self.invariants is not None:
            self.invariants.on_injector_step(self.step, step_index)
        self.step = step_index

    # -- scheduled faults ----------------------------------------------
    def _scheduled_active(self, kind: str, ptype: PacketType | None = None) -> bool:
        return any(
            fault.kind == kind
            and fault.active(self.step)
            and (ptype is None or fault.ptype == ptype)
            for fault in self.plan.scheduled
        )

    def stuck_imu_active(self) -> bool:
        return self._scheduled_active("stuck_imu")

    def camera_blackout_active(self) -> bool:
        return self._scheduled_active("camera_blackout")

    # -- wire faults ----------------------------------------------------
    def decide(self, ptype: PacketType) -> FaultDecision:
        """Decide this packet's fate; consumes RNG only for matching rules."""
        if self._scheduled_active("drop", ptype):
            self.counters.dropped += 1
            self._record("drop", ptype)
            return FaultDecision(drop=True)
        corrupt = self._scheduled_active("corrupt", ptype)
        rule = self._rules.get(ptype)
        duplicate = False
        delay_steps = 0
        if rule is not None:
            if rule.drop and self._rng.random() < rule.drop:
                self.counters.dropped += 1
                self._record("drop", ptype)
                return FaultDecision(drop=True)
            if not corrupt and rule.corrupt:
                corrupt = self._rng.random() < rule.corrupt
            if rule.duplicate:
                duplicate = self._rng.random() < rule.duplicate
            if rule.delay and self._rng.random() < rule.delay:
                delay_steps = rule.delay_steps
        if not (corrupt or duplicate or delay_steps):
            return _NO_FAULT
        if corrupt:
            self.counters.corrupted += 1
            self._record("corrupt", ptype)
        if duplicate:
            self.counters.duplicated += 1
            self._record("duplicate", ptype)
        if delay_steps:
            self.counters.delayed += 1
            self._record("delay", ptype)
        return FaultDecision(
            corrupt=corrupt, duplicate=duplicate, delay_steps=delay_steps
        )

    def corrupt_wire(self, wire: bytes) -> bytes:
        """Flip one byte of the frame, preserving framing (header length
        field and magic untouched) so the receiver discards exactly one
        packet via its CRC check rather than losing stream sync."""
        mutated = bytearray(wire)
        if len(mutated) > HEADER_SIZE:
            index = HEADER_SIZE + self._rng.randrange(len(mutated) - HEADER_SIZE)
        else:
            index = 3  # empty payload: flip the CRC byte itself
        mutated[index] ^= 1 + self._rng.randrange(255)
        return bytes(mutated)
