"""RoSE co-simulation core — the paper's primary contribution.

The pieces map one-to-one onto Figure 5 of the paper:

* :mod:`repro.core.packets` — the serialized synchronization + data packet
  protocol spoken between the synchronizer and the FireSim-side bridge
  driver.
* :mod:`repro.core.transport` — the byte transport those packets travel
  over (in-process channel, or real TCP as deployed).
* :mod:`repro.core.bridge` — the RoSE BRIDGE: hardware queues exposed to
  the target SoC as memory-mapped registers, plus the control unit that
  throttles RTL execution.
* :mod:`repro.core.driver` — the host-side bridge driver.
* :mod:`repro.core.synchronizer` — Algorithm 1's lockstep loop.
* :mod:`repro.core.cosim` — top-level assembly of environment simulator +
  SoC simulator + bridge + synchronizer.
* :mod:`repro.core.config` / :mod:`repro.core.deploy` — experiment and
  deployment configuration.
"""

from repro.core.packets import (
    DataPacket,
    PacketType,
    decode_packet,
    encode_packet,
)
from repro.core.transport import InProcessTransport, TcpTransport, Transport, transport_pair
from repro.core.bridge import RoseBridge, BridgeConfig
from repro.core.config import CoSimConfig, SyncConfig
from repro.core.synchronizer import Synchronizer
from repro.core.cosim import CoSimulation, MissionResult, run_mission

__all__ = [
    "PacketType",
    "DataPacket",
    "encode_packet",
    "decode_packet",
    "Transport",
    "InProcessTransport",
    "TcpTransport",
    "transport_pair",
    "RoseBridge",
    "BridgeConfig",
    "SyncConfig",
    "CoSimConfig",
    "Synchronizer",
    "CoSimulation",
    "MissionResult",
    "run_mission",
]
