"""Co-simulation configuration objects.

:class:`SyncConfig` encodes Equation 1's constraint between the two
simulators' time steps:

    airsim_steps / firesim_steps = soc_clock_freq / airsim_frame_freq

i.e. the number of environment frames per synchronization follows from
the cycle budget, the SoC's target frequency, and the environment's frame
rate.  The paper's Figure 16 sweep uses 10 M cycles / 1 frame up to
400 M cycles / 40 frames (a 100 Hz frame rate at 1 GHz), which is this
module's default regime.

:class:`CoSimConfig` bundles everything one closed-loop experiment needs:
the environment, the SoC configuration, the controller software, and the
synchronization parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.faults import FaultPlan
from repro.env.sensors import SensorNoiseProfile
from repro.env.simulator import EnvConfig
from repro.errors import ConfigError
from repro.soc import calib


@dataclass(frozen=True)
class SyncConfig:
    """Lockstep synchronization parameters (Section 3.4.1, Equation 1).

    The timeout fields govern the synchronizer's resilience to a faulty
    link: ``sync_done_timeout_s`` is the wall-clock watchdog on one sync
    step, ``regrant_timeout_s`` how long a remote host may stay silent
    before the grant is re-issued, ``max_regrants`` how many re-issues are
    attempted before the watchdog ends the mission, and ``recv_timeout_s``
    the deadline for blocking single-packet receives.
    """

    cycles_per_sync: int = 10_000_000
    soc_frequency_hz: float = calib.SOC_FREQUENCY_HZ
    frame_rate_hz: float = 100.0
    sync_done_timeout_s: float = 30.0
    recv_timeout_s: float = 5.0
    regrant_timeout_s: float = 5.0
    max_regrants: int = 3

    def __post_init__(self) -> None:
        if self.cycles_per_sync <= 0:
            raise ConfigError("cycles_per_sync must be positive")
        if self.soc_frequency_hz <= 0 or self.frame_rate_hz <= 0:
            raise ConfigError("frequencies must be positive")
        if (
            self.sync_done_timeout_s <= 0
            or self.recv_timeout_s <= 0
            or self.regrant_timeout_s <= 0
        ):
            raise ConfigError("synchronizer timeouts must be positive")
        if self.max_regrants < 0:
            raise ConfigError("max_regrants must be non-negative")
        if self.frames_per_sync < 1:
            raise ConfigError(
                "synchronization period shorter than one environment frame: "
                f"{self.cycles_per_sync} cycles at {self.soc_frequency_hz:.0f} Hz "
                f"covers {self.sync_period_seconds * self.frame_rate_hz:.3f} frames"
            )

    @property
    def sync_period_seconds(self) -> float:
        """Simulated seconds per synchronization."""
        return self.cycles_per_sync / self.soc_frequency_hz

    @property
    def frames_per_sync(self) -> int:
        """Environment frames per synchronization (Equation 1).

        Computed as one fused ratio: dividing by the frequency first and
        re-multiplying loses a ulp exactly at the .5 rounding boundary.
        """
        return int(round(self.cycles_per_sync * self.frame_rate_hz / self.soc_frequency_hz))

    @property
    def cycles_per_frame(self) -> float:
        return self.cycles_per_sync / self.frames_per_sync

    def describe(self) -> str:
        return (
            f"{self.cycles_per_sync / 1e6:.0f}M cycles / "
            f"{self.frames_per_sync} frame(s) per sync"
        )


@dataclass
class CoSimConfig:
    """Everything one closed-loop mission needs."""

    world: str = "tunnel"
    vehicle: str = "quadrotor"  # "quadrotor" or "car" (artifact A.8.3)
    soc: str = "A"  # Table 2 configuration name
    controller: str = "dnn"  # "dnn", "mpc", "fusion" (camera+IMU), "slam" (lidar), "ros" (node pipeline)
    model: str = "resnet14"  # DNN variant ("fusion": the camera backbone; "mpc": ignored)
    target_velocity: float = 3.0  # m/s forward target (the §5.2 sweep knob)
    initial_angle_deg: float = 0.0
    #: Spawn offset from the centerline, meters (scenario spawn knob).
    #: ``0.0`` is the legacy spawn; serialization omits the field at its
    #: default so pre-scenario configs keep their cache keys.
    initial_lateral_offset: float = 0.0
    sync: SyncConfig = field(default_factory=SyncConfig)
    max_sim_time: float = 60.0  # give up after this much simulated time
    dynamic_runtime: bool = False  # Section 5.3's adaptive DNN selection
    argmax_policy: bool = False  # argmax instead of confidence-scaled gains
    fusion_camera_every: int = 10  # camera branch rate divider ("fusion" only)
    background: str | None = None  # concurrent workload: None, "slam-mapper", "dnn-monitor"
    gemmini_dtype: str = "fp32"  # "fp32" (the paper's config) or "int8"
    beta_lateral: float | None = None  # Equation 2 gains; None = defaults
    beta_angular: float | None = None
    world_params: dict[str, Any] = field(default_factory=dict)  # forwarded to the world builder
    seed: int = 0
    transport: str = "inprocess"
    faults: FaultPlan | None = None  # seeded link/sensor fault injection
    #: Scenario sensor-noise multipliers.  ``None`` builds stock sensors
    #: (the legacy path); the scenario compiler only sets a profile when
    #: it is non-identity, and serialization omits ``None``, so legacy
    #: configs keep their cache keys and golden config dicts.
    noise: SensorNoiseProfile | None = None
    #: App-layer sensor watchdog, in synchronization periods.  Only armed
    #: when ``faults`` is set, so fault-free runs are bit-identical to the
    #: happy-path configuration.
    sensor_timeout_syncs: int = 3
    sensor_retries: int = 3
    #: Runtime invariant checking (repro.core.invariants): ``True``/``False``
    #: force it, ``None`` resolves via ``REPRO_CHECK_INVARIANTS`` and is on
    #: automatically under pytest.  Checking is observational — a passing
    #: mission is bit-identical either way — but the flag is still part of
    #: the canonical config JSON (and therefore every sweep-cache key),
    #: because a run that *would* raise InvariantViolation has a different
    #: outcome than one that silently continued.
    check_invariants: bool | None = None

    def __post_init__(self) -> None:
        if self.target_velocity <= 0:
            raise ConfigError("target_velocity must be positive")
        if self.max_sim_time <= 0:
            raise ConfigError("max_sim_time must be positive")
        if self.controller not in ("dnn", "mpc", "fusion", "slam", "ros"):
            raise ConfigError(
                "controller must be 'dnn', 'mpc', 'fusion', 'slam' or 'ros', "
                f"got {self.controller!r}"
            )
        if self.controller != "dnn" and self.dynamic_runtime:
            raise ConfigError("dynamic_runtime applies to the DNN controller only")
        if self.fusion_camera_every < 1:
            raise ConfigError("fusion_camera_every must be at least 1")
        if self.background not in (None, "slam-mapper", "dnn-monitor"):
            raise ConfigError(
                "background must be None, 'slam-mapper' or 'dnn-monitor', "
                f"got {self.background!r}"
            )
        if self.background is not None and self.controller != "dnn":
            raise ConfigError(
                "background workloads are supported with the 'dnn' controller"
            )
        if self.gemmini_dtype not in ("fp32", "int8"):
            raise ConfigError(
                f"gemmini_dtype must be 'fp32' or 'int8', got {self.gemmini_dtype!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if self.noise is not None and not isinstance(self.noise, SensorNoiseProfile):
            raise ConfigError(
                f"noise must be a SensorNoiseProfile or None, "
                f"got {type(self.noise).__name__}"
            )
        if not isinstance(self.initial_lateral_offset, (int, float)) or isinstance(
            self.initial_lateral_offset, bool
        ):
            raise ConfigError(
                f"initial_lateral_offset must be a number, "
                f"got {self.initial_lateral_offset!r}"
            )
        if self.sensor_timeout_syncs < 1:
            raise ConfigError("sensor_timeout_syncs must be at least 1")
        if self.sensor_retries < 0:
            raise ConfigError("sensor_retries must be non-negative")
        if self.check_invariants not in (None, True, False):
            raise ConfigError(
                "check_invariants must be True, False, or None (auto), "
                f"got {self.check_invariants!r}"
            )

    def env_config(self) -> EnvConfig:
        return EnvConfig(
            world=self.world,
            vehicle=self.vehicle,
            frame_rate=self.sync.frame_rate_hz,
            initial_angle_deg=self.initial_angle_deg,
            initial_lateral_offset=self.initial_lateral_offset,
            seed=self.seed,
            noise=self.noise,
        )
