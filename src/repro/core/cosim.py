"""Top-level co-simulation assembly and the mission runner.

:class:`CoSimulation` wires together everything Figure 3 shows: the
environment simulator behind its RPC server, the SoC model inside a
FireSim host with the RoSE bridge, the controller application loaded as
the target program, and the synchronizer in the middle.  :func:`run_mission`
is the one-call entry point the examples and benchmarks use.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.app.controller import AppStats, ControllerGains, trail_navigation_app
from repro.app.dynamic import DynamicRuntimeConfig, dynamic_trail_app
from repro.app.fusion import FusionConfig, FusionStats, fusion_controller_app
from repro.app.mpc import MpcController, MpcStats, mpc_navigation_app
from repro.app.perception import BehavioralPerception, Perception
from repro.app.monitor import MonitorStats, dnn_monitor_app
from repro.app.slam_nav import SlamNavStats, slam_mapping_app, slam_navigation_app
from repro.dnn.fusion import FusionSessions
from repro.slam.pipeline import SlamPipeline, slam_grid_for_world
from repro.soc.demux import IoDemux
from repro.core.config import CoSimConfig
from repro.core.csvlog import SyncLogger
from repro.core.faults import FaultInjector
from repro.core.invariants import InvariantChecker, invariants_enabled
from repro.core.synchronizer import Synchronizer, SyncStats
from repro.core.timing import StageTimer, TimedPerception
from repro.core.trace import Tracer
from repro.core.transport import FaultyTransport, transport_pair
from repro.errors import TransportError, WatchdogError
from repro.obs.declarations import mission_registry
from repro.obs.recorder import FlightRecord, trace_summary
from repro.dnn.calibrated import classifier_profile
from repro.dnn.resnet import build_resnet_graph
from repro.dnn.runtime import InferenceSession
from repro.env.rpc import RpcClient, RpcServer
from repro.env.simulator import EnvSimulator, TrajectorySample
from repro.env.worlds import cached_world
from repro.soc.firesim import FireSimHost
from repro.soc.soc import Soc, TargetRuntime, soc_config

#: A target program: the factory the SoC scheduler calls with its runtime.
ProgramFactory = Callable[[TargetRuntime], object]

#: The dynamic runtime's fixed network pairing (Section 5.3).
DYNAMIC_HI_MODEL = "resnet14"
DYNAMIC_LO_MODEL = "resnet6"


@dataclass
class MissionResult:
    """Everything the paper's figures report about one flight."""

    config: CoSimConfig
    completed: bool
    mission_time: float | None
    #: ``None`` for a clean flight (completed or honest DNF); the reason
    #: string when the co-simulation itself failed: ``"watchdog"`` (the
    #: synchronizer gave up re-granting a lost step) or ``"link_timeout"``
    #: (the transport died).
    failure_reason: str | None
    sim_time: float
    collisions: int
    progress: float
    average_velocity: float
    activity_factor: float
    soc_cycles: int
    gemmini_busy_cycles: int
    inference_count: int
    mean_inference_latency_ms: float
    trajectory: list[TrajectorySample] = field(repr=False, default_factory=list)
    app_stats: AppStats | None = field(repr=False, default=None)
    mpc_stats: MpcStats | None = field(repr=False, default=None)
    fusion_stats: FusionStats | None = field(repr=False, default=None)
    slam_stats: SlamNavStats | None = field(repr=False, default=None)
    background_stats: SlamNavStats | None = field(repr=False, default=None)
    monitor_stats: MonitorStats | None = field(repr=False, default=None)
    sync_stats: SyncStats | None = field(repr=False, default=None)
    logger: SyncLogger | None = field(repr=False, default=None)
    #: Host wall-clock seconds per co-simulation stage (env_step, soc_step,
    #: sync_overhead, inference).  Observational only — excluded from
    #: result signatures and cache keys, since wall time varies run-to-run.
    stage_timings: dict[str, float] | None = field(repr=False, default=None)
    #: The mission's ``rose-obs/1`` flight record (repro.obs): metrics
    #: snapshot + stage timings + trace summary.  Rides through the sweep
    #: result cache, so cache hits reconstitute their telemetry.
    obs: FlightRecord | None = field(repr=False, default=None, compare=False)

    @property
    def label(self) -> str:
        if self.config.controller == "mpc":
            mode = "mpc"
        elif self.config.controller == "slam":
            mode = "slam"
        elif self.config.controller == "ros":
            mode = f"ros-{self.config.model}"
        elif self.config.controller == "fusion":
            mode = f"fusion-{self.config.model}"
        elif self.config.dynamic_runtime:
            mode = "dynamic"
        else:
            mode = self.config.model
        return f"{self.config.soc}/{mode}@{self.config.target_velocity:g}m/s"

    def summary(self) -> str:
        if self.completed:
            status = f"completed in {self.mission_time:.2f}s"
        elif self.failure_reason:
            status = (
                f"FAILED ({self.failure_reason}, "
                f"progress {100 * self.progress:.0f}%)"
            )
        else:
            status = f"DNF (progress {100 * self.progress:.0f}%)"
        return (
            f"{self.label}: {status}, {self.collisions} collision(s), "
            f"avg velocity {self.average_velocity:.2f} m/s, "
            f"activity factor {self.activity_factor:.3f}, "
            f"{self.inference_count} inferences "
            f"(mean latency {self.mean_inference_latency_ms:.1f} ms)"
        )


class CoSimulation:
    """One configured closed-loop co-simulation, ready to run."""

    def __init__(
        self,
        config: CoSimConfig,
        perception: Perception | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config
        self.tracer = tracer
        #: Wall-clock stage accounting for this run (observational only).
        self.stage_timer = StageTimer()
        #: The per-mission metrics registry (repro.obs), shared by every
        #: component below.  Instrumentation is observational: recording
        #: never consumes RNG, reads wall clock, or alters behaviour.
        self.obs = mission_registry()
        #: One shared InferenceSession per model within this simulation —
        #: the dynamic runtime and background tenants reuse graphs/plans
        #: instead of rebuilding them per call site.
        self._sessions: dict[str, InferenceSession] = {}

        # Environment side (Figure 3, left).
        world = (
            cached_world(config.world, **config.world_params)
            if config.world_params
            else None
        )
        self.env = EnvSimulator(config.env_config(), world=world)
        self._rpc_server = RpcServer(self.env)
        self.rpc = RpcClient(self._rpc_server)

        # Hardware side (Figure 3, right).  The SoC's target clock is the
        # one SyncConfig's Equation 1 is built around — single source.
        base_soc = soc_config(config.soc)
        if (
            base_soc.frequency_hz != config.sync.soc_frequency_hz
            or base_soc.gemmini_dtype != config.gemmini_dtype
        ):
            base_soc = dataclasses.replace(
                base_soc,
                frequency_hz=config.sync.soc_frequency_hz,
                gemmini_dtype=config.gemmini_dtype,
            )
        self.soc = Soc(base_soc)

        # Fault injection (optional).  One injector is shared by both
        # transport endpoints and the synchronizer so the seeded RNG is
        # consumed in deterministic packet order.
        self.fault_injector = (
            FaultInjector(config.faults) if config.faults is not None else None
        )
        if self.fault_injector is not None:
            self.fault_injector.registry = self.obs
        self.app_stats = AppStats(registry=self.obs)
        self.mpc_stats = MpcStats()
        self.fusion_stats = FusionStats(registry=self.obs)
        self.slam_stats = SlamNavStats()
        self.background_stats = SlamNavStats()
        self.monitor_stats = MonitorStats()
        self._demux = IoDemux() if config.background else None
        app = self._build_app(perception)
        if app is not None:
            self.soc.load_program(app)
        if config.background == "slam-mapper":
            self._load_background_mapper()
        elif config.background == "dnn-monitor":
            self._load_background_monitor()

        # The link between them.
        sync_end, firesim_end = transport_pair(config.transport)
        if self.fault_injector is not None:
            sync_end = FaultyTransport(sync_end, self.fault_injector)
            firesim_end = FaultyTransport(firesim_end, self.fault_injector)
        self.host = FireSimHost(self.soc, firesim_end)
        self.logger = SyncLogger()

        # Runtime invariant checking (repro.core.invariants) — observational
        # assertions across the synchronizer, bridge, transports, and fault
        # injector.  On by default under pytest, opt-in elsewhere.
        self.invariants: InvariantChecker | None = None
        if invariants_enabled(config):
            self.invariants = InvariantChecker(config.sync)
            self.invariants.watch(
                bridge=self.soc.bridge,
                host=self.host,
                soc=self.soc,
                transports=(sync_end, firesim_end),
                injector=self.fault_injector,
            )
            self.soc.bridge.invariants = self.invariants
            if self.fault_injector is not None:
                self.fault_injector.invariants = self.invariants

        self.synchronizer = Synchronizer(
            rpc=self.rpc,
            transport=sync_end,
            sync=config.sync,
            host_service=self.host.service,
            logger=self.logger,
            tracer=tracer,
            faults=self.fault_injector,
            stage_timer=self.stage_timer,
            invariants=self.invariants,
            registry=self.obs,
        )

    # ------------------------------------------------------------------
    def _build_app(self, perception: Perception | None) -> ProgramFactory | None:
        config = self.config
        # Degradation timeouts arm only under fault injection: with a
        # healthy link the apps wait indefinitely, so their op streams —
        # and hence every mission metric — are bit-identical to a build
        # without the fault subsystem.
        if config.faults is not None:
            sensor_timeout_cycles = (
                config.sensor_timeout_syncs * config.sync.cycles_per_sync
            )
            sensor_retries = config.sensor_retries
        else:
            sensor_timeout_cycles = None
            sensor_retries = 0
        if config.controller == "mpc":
            controller = MpcController(
                world=self.env.world, target_velocity=config.target_velocity
            )
            return lambda rt: mpc_navigation_app(
                rt, controller, self.soc.cpu, stats=self.mpc_stats
            )
        if config.controller == "ros":
            from repro.roslite.trail_nodes import load_trail_pipeline

            pipeline = load_trail_pipeline(
                self.soc,
                self._timed(perception or self._behavioral(config.model)),
                self._session(config.model),
                target_velocity=config.target_velocity,
            )
            self.app_stats = pipeline.stats
            self.app_stats.registry = self.obs
            self.ros_pipeline = pipeline
            return None
        if config.controller == "slam":
            env_world = self.env.world
            pipeline = SlamPipeline(
                slam_grid_for_world(env_world),
                initial_x=self.env.dynamics.state.x,
                initial_y=self.env.dynamics.state.y,
                initial_yaw=self.env.dynamics.state.yaw,
            )
            return lambda rt: slam_navigation_app(
                rt,
                pipeline,
                env_world,
                self.soc.cpu,
                target_velocity=config.target_velocity,
                stats=self.slam_stats,
                seed=config.seed + 31,
            )
        if config.controller == "fusion":
            sessions = FusionSessions(
                self.soc.cpu, self.soc.gemmini, camera_variant=config.model
            )
            chosen = self._timed(perception or self._behavioral(config.model))
            return lambda rt: fusion_controller_app(
                rt,
                sessions,
                chosen,
                target_velocity=config.target_velocity,
                cpu=self.soc.cpu,
                config=FusionConfig(camera_every=config.fusion_camera_every),
                stats=self.fusion_stats,
                sensor_timeout_cycles=sensor_timeout_cycles,
                sensor_retries=sensor_retries,
            )
        defaults = ControllerGains()
        gains = ControllerGains(
            beta_lateral=(
                defaults.beta_lateral if config.beta_lateral is None else config.beta_lateral
            ),
            beta_angular=(
                defaults.beta_angular if config.beta_angular is None else config.beta_angular
            ),
        )
        if config.dynamic_runtime:
            session_hi = self._session(DYNAMIC_HI_MODEL)
            session_lo = self._session(DYNAMIC_LO_MODEL)
            perception_hi = self._timed(perception or self._behavioral(DYNAMIC_HI_MODEL))
            perception_lo = self._timed(self._behavioral(DYNAMIC_LO_MODEL))
            return lambda rt: dynamic_trail_app(
                rt,
                session_hi,
                session_lo,
                perception_hi,
                perception_lo,
                target_velocity=config.target_velocity,
                config=DynamicRuntimeConfig(gains=gains),
                stats=self.app_stats,
            )
        session = self._session(config.model)
        chosen = self._timed(perception or self._behavioral(config.model))
        return lambda rt: trail_navigation_app(
            rt,
            session,
            chosen,
            target_velocity=config.target_velocity,
            gains=gains,
            stats=self.app_stats,
            argmax_policy=config.argmax_policy,
            demux=self._demux,
            sensor_timeout_cycles=sensor_timeout_cycles,
            sensor_retries=sensor_retries,
        )

    def _load_background_mapper(self) -> None:
        """Add the concurrent SLAM mapping workload (multi-tenant mode)."""
        pipeline = SlamPipeline(
            slam_grid_for_world(self.env.world),
            initial_x=self.env.dynamics.state.x,
            initial_y=self.env.dynamics.state.y,
            initial_yaw=self.env.dynamics.state.yaw,
        )
        self.soc.add_program(
            lambda rt: slam_mapping_app(
                rt,
                pipeline,
                self.soc.cpu,
                stats=self.background_stats,
                seed=self.config.seed + 47,
                demux=self._demux,
            ),
            name="slam-mapper",
        )

    def _load_background_monitor(self) -> None:
        """Add a periodic background DNN workload (accelerator tenant)."""
        session = self._session("resnet6")
        self.soc.add_program(
            lambda rt: dnn_monitor_app(
                rt, session, self.soc.cpu, stats=self.monitor_stats
            ),
            name="dnn-monitor",
        )

    def _session(self, model: str) -> InferenceSession:
        """One shared session per model (the graph itself is memoized
        process-wide by :func:`build_resnet_graph`)."""
        session = self._sessions.get(model)
        if session is None:
            session = InferenceSession(
                build_resnet_graph(model),
                self.soc.cpu,
                self.soc.gemmini,
                stage_timer=self.stage_timer,
            )
            self._sessions[model] = session
        return session

    def _timed(self, perception: Perception) -> TimedPerception:
        """Wrap a perception so its wall time lands in the ``inference`` stage."""
        return TimedPerception(perception, self.stage_timer)

    def _behavioral(self, model: str) -> BehavioralPerception:
        return BehavioralPerception(
            classifier_profile(model, quantized=self.config.gemmini_dtype == "int8"),
            seed=self.config.seed + 17,
        )

    # ------------------------------------------------------------------
    def run(self) -> MissionResult:
        """Fly the mission to completion, timeout, or max simulated time.

        An unrecoverable link failure ends the mission with a structured
        :class:`MissionResult` (``failure_reason`` set, everything flown
        so far collected) rather than an unhandled exception — a crashed
        link is an *experimental outcome* under fault injection, not a
        harness bug.
        """
        failure_reason: str | None = None
        self.synchronizer.configure()
        self.rpc.takeoff()
        try:
            self.synchronizer.run(
                max_sim_time=self.config.max_sim_time,
                stop_condition=self.rpc.mission_complete,
            )
        except WatchdogError:
            failure_reason = "watchdog"
        except TransportError:
            failure_reason = "link_timeout"
        try:
            self.synchronizer.shutdown()
        except TransportError:
            # A dead link cannot deliver the shutdown packet; the result
            # below already records why.
            failure_reason = failure_reason or "link_timeout"
        return self._collect(failure_reason)

    def _collect(self, failure_reason: str | None = None) -> MissionResult:
        # Deferred: importing repro.sweep at module scope would close an
        # import cycle (sweep.runner imports this module).  By the time a
        # mission is collected, both packages are fully initialised.
        from repro.sweep.fingerprint import config_key

        env = self.env
        # The synchronizer only sees its own endpoint's decode discards;
        # corrupted sensor responses die at the FireSim end.  Fold both
        # ends into the mission-level count.
        self.synchronizer.stats.corrupt_discards = getattr(
            self.synchronizer.transport, "corrupt_packets", 0
        ) + getattr(self.host.transport, "corrupt_packets", 0)
        completed = env.mission_complete
        mission_time = env.mission_time
        if completed and mission_time and mission_time > 0:
            avg_velocity = env.world.goal_arclength / mission_time
        else:
            traj = env.trajectory
            avg_velocity = (
                float(np.mean([p.speed for p in traj])) if traj else 0.0
            )
        self._record_final_metrics(completed)
        result = MissionResult(
            config=self.config,
            completed=completed,
            mission_time=mission_time,
            failure_reason=failure_reason,
            sim_time=env.sim_time,
            collisions=env.collision_count,
            progress=env.course_progress,
            average_velocity=avg_velocity,
            activity_factor=self.soc.activity_factor,
            soc_cycles=self.soc.cycle,
            gemmini_busy_cycles=self.soc.gemmini_busy_cycles,
            inference_count=self.app_stats.inference_count,
            mean_inference_latency_ms=self.app_stats.mean_latency_ms(
                self.soc.config.frequency_hz
            ),
            trajectory=list(env.trajectory),
            app_stats=self.app_stats,
            mpc_stats=self.mpc_stats,
            fusion_stats=self.fusion_stats,
            slam_stats=self.slam_stats,
            background_stats=self.background_stats,
            monitor_stats=self.monitor_stats,
            sync_stats=self.synchronizer.stats,
            logger=self.logger,
            stage_timings=self.stage_timer.asdict(),
        )
        result.obs = FlightRecord(
            label=result.label,
            config_key=config_key(self.config),
            metrics=self.obs.snapshot(),
            stage_timings=self.stage_timer.asdict(),
            trace=(
                trace_summary(self.tracer.events)
                if self.tracer is not None
                else None
            ),
        )
        return result

    def _record_final_metrics(self, completed: bool) -> None:
        """Fold end-of-mission component counters into the registry.

        These are totals that only settle once the mission is over (SoC
        cycle books, bridge queue counters, transport byte counts), so
        they are advanced here rather than incremented on the hot path.
        """
        obs = self.obs
        env = self.env
        soc = self.soc
        obs.advance_to("rose_soc_cycles_total", soc.cycle)
        obs.advance_to("rose_soc_cpu_busy_cycles_total", soc.counters.cpu_busy_cycles)
        obs.advance_to("rose_soc_idle_cycles_total", soc.counters.idle_cycles)
        obs.advance_to("rose_soc_gemmini_busy_cycles_total", soc.gemmini_busy_cycles)
        obs.advance_to("rose_soc_mmio_total", soc.counters.mmio_reads, op="read")
        obs.advance_to("rose_soc_mmio_total", soc.counters.mmio_writes, op="write")
        obs.advance_to("rose_soc_inferences_total", soc.counters.inferences)
        bridge = soc.bridge.counters
        for queue, event, count in (
            ("rx", "enqueued", bridge.rx_enqueued),
            ("rx", "dequeued", bridge.rx_dequeued),
            ("rx", "rejected", bridge.rx_rejected),
            ("tx", "enqueued", bridge.tx_enqueued),
            ("tx", "dequeued", bridge.tx_dequeued),
        ):
            obs.advance_to("rose_bridge_packets_total", count, queue=queue, event=event)
        obs.advance_to("rose_bridge_steps_granted_total", bridge.steps_granted)
        obs.advance_to("rose_soc_dma_bytes_total", bridge.rx_bytes_enqueued, direction="rx")
        obs.advance_to("rose_soc_dma_bytes_total", bridge.tx_bytes_enqueued, direction="tx")
        for endpoint, transport in (
            ("sync", self.synchronizer.transport),
            ("firesim", self.host.transport),
        ):
            obs.advance_to(
                "rose_link_bytes_total",
                getattr(transport, "bytes_sent", 0),
                endpoint=endpoint,
                direction="sent",
            )
            obs.advance_to(
                "rose_link_bytes_total",
                getattr(transport, "bytes_received", 0),
                endpoint=endpoint,
                direction="received",
            )
        # Per-layer cost histograms: the cost plan is static per session,
        # so each node contributes `inferences_run` observations.
        gemmini_ops = 0
        for session in self._sessions.values():
            runs = session.inferences_run
            if runs <= 0:
                continue
            for cost in session.report.node_costs:
                if cost.backend == "gemmini":
                    gemmini_ops += runs
                if cost.cycles <= 0:
                    continue
                obs.observe(
                    "rose_dnn_layer_cycles",
                    cost.cycles,
                    count=runs,
                    model=session.graph.name,
                    backend=cost.backend,
                )
        obs.advance_to("rose_soc_gemmini_ops_total", gemmini_ops)
        obs.set("rose_mission_sim_time_seconds", env.sim_time)
        obs.set("rose_mission_progress", env.course_progress)
        obs.set("rose_mission_completed", 1 if completed else 0)
        obs.advance_to("rose_mission_collisions_total", env.collision_count)


def run_mission(
    config: CoSimConfig,
    perception: Perception | None = None,
    tracer: Tracer | None = None,
) -> MissionResult:
    """Build and run one mission (the examples' and benches' entry point)."""
    return CoSimulation(config, perception=perception, tracer=tracer).run()
