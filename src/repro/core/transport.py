"""Byte transports for the synchronizer <-> bridge-driver link.

The paper deploys the synchronizer and the FireSim bridge driver as
separate processes connected by TCP ("communicating ... with FireSim by
using a TCP listener", Section 3.4.1).  Two interchangeable transports
implement that link here:

* :class:`InProcessTransport` — a deque pair, used when the whole
  co-simulation runs in one process (the default for experiments; zero
  copy, deterministic).
* :class:`TcpTransport` — real localhost TCP sockets with the same framed
  packet protocol, proving the orchestration works across a process
  boundary exactly as deployed.

Both ends speak :mod:`repro.core.packets` wire bytes; ``recv`` is a
non-blocking poll returning ``None`` when no complete packet is available,
which is the semantics the lockstep loop needs.
"""

from __future__ import annotations

import socket
from collections import deque

from repro.core.packets import (
    HEADER_SIZE,
    DataPacket,
    decode_header,
    decode_packet,
    encode_packet,
)
from repro.errors import TransportError


class Transport:
    """One endpoint of a bidirectional packet link."""

    def send(self, packet: DataPacket) -> None:
        raise NotImplementedError

    def recv(self) -> DataPacket | None:
        """Return the next complete packet, or ``None`` if none is pending."""
        raise NotImplementedError

    def recv_blocking(self, timeout: float = 5.0) -> DataPacket:
        """Wait for the next packet; raises on timeout."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            packet = self.recv()
            if packet is not None:
                return packet
            if time.monotonic() > deadline:
                raise TransportError(f"no packet within {timeout}s")
            time.sleep(0.0005)

    def drain(self) -> list[DataPacket]:
        """All packets currently pending."""
        packets = []
        while True:
            packet = self.recv()
            if packet is None:
                return packets
            packets.append(packet)

    def close(self) -> None:
        pass


class InProcessTransport(Transport):
    """One end of a deque-backed in-process link (see :func:`transport_pair`)."""

    def __init__(self, outbox: deque, inbox: deque):
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0

    def send(self, packet: DataPacket) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        wire = encode_packet(packet)
        self.bytes_sent += len(wire)
        self.packets_sent += 1
        self._outbox.append(wire)

    def recv(self) -> DataPacket | None:
        if not self._inbox:
            return None
        wire = self._inbox.popleft()
        self.bytes_received += len(wire)
        return decode_packet(wire)

    def close(self) -> None:
        self._closed = True


class TcpTransport(Transport):
    """Framed packet transport over a connected TCP socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setblocking(False)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = bytearray()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0

    def send(self, packet: DataPacket) -> None:
        wire = encode_packet(packet)
        self.bytes_sent += len(wire)
        self.packets_sent += 1
        view = memoryview(wire)
        while view:
            try:
                sent = self._sock.send(view)
            except BlockingIOError:
                continue
            except OSError as exc:
                raise TransportError(f"TCP send failed: {exc}") from exc
            view = view[sent:]

    def _fill(self) -> None:
        while True:
            try:
                chunk = self._sock.recv(65536)
            except BlockingIOError:
                return
            except OSError as exc:
                raise TransportError(f"TCP recv failed: {exc}") from exc
            if not chunk:
                return
            self._buffer.extend(chunk)
            self.bytes_received += len(chunk)

    def recv(self) -> DataPacket | None:
        self._fill()
        if len(self._buffer) < HEADER_SIZE:
            return None
        _, length = decode_header(bytes(self._buffer[:HEADER_SIZE]))
        total = HEADER_SIZE + length
        if len(self._buffer) < total:
            return None
        wire = bytes(self._buffer[:total])
        del self._buffer[:total]
        return decode_packet(wire)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def transport_pair(kind: str = "inprocess") -> tuple[Transport, Transport]:
    """Create both ends of a connected link.

    ``kind`` is ``"inprocess"`` or ``"tcp"`` (localhost loopback).
    """
    if kind == "inprocess":
        a_to_b: deque = deque()
        b_to_a: deque = deque()
        return (
            InProcessTransport(outbox=a_to_b, inbox=b_to_a),
            InProcessTransport(outbox=b_to_a, inbox=a_to_b),
        )
    if kind == "tcp":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            client = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            server, _addr = listener.accept()
        finally:
            listener.close()
        return TcpTransport(client), TcpTransport(server)
    raise TransportError(f"unknown transport kind {kind!r}")
