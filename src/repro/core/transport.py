"""Byte transports for the synchronizer <-> bridge-driver link.

The paper deploys the synchronizer and the FireSim bridge driver as
separate processes connected by TCP ("communicating ... with FireSim by
using a TCP listener", Section 3.4.1).  Two interchangeable transports
implement that link here:

* :class:`InProcessTransport` — a deque pair, used when the whole
  co-simulation runs in one process (the default for experiments; zero
  copy, deterministic).
* :class:`TcpTransport` — real localhost TCP sockets with the same framed
  packet protocol, proving the orchestration works across a process
  boundary exactly as deployed.

Both ends speak :mod:`repro.core.packets` wire bytes; ``recv`` is a
non-blocking poll returning ``None`` when no complete packet is available,
which is the semantics the lockstep loop needs.

Robustness semantics shared by both transports:

* a closed endpoint raises :class:`TransportError` from ``send`` *and*
  ``recv`` — half-dead endpoints must fail loudly, not return ``None``
  forever;
* a frame that fails to decode (CRC mismatch, bad framing) is *discarded*
  and counted in ``corrupt_packets`` rather than raised — one corrupted
  packet must not take down the link (the synchronizer's retry/watchdog
  paths recover the lost data);
* :class:`FaultyTransport` wraps any transport and injects faults from a
  seeded :class:`~repro.core.faults.FaultInjector` at the wire-byte level.
"""

from __future__ import annotations

import select
import socket
import struct
import time
from collections import deque

from repro.core.faults import FaultInjector
from repro.core.packets import (
    HEADER_SIZE,
    MAGIC,
    DataPacket,
    decode_header,
    decode_packet,
    encode_packet,
)
from repro.errors import PacketError, TransportError


class Transport:
    """One endpoint of a bidirectional packet link."""

    def send(self, packet: DataPacket) -> None:
        raise NotImplementedError

    def send_wire(self, wire: bytes) -> None:
        """Transmit a pre-encoded (possibly deliberately corrupted) frame."""
        raise NotImplementedError

    def recv(self) -> DataPacket | None:
        """Return the next complete packet, or ``None`` if none is pending."""
        raise NotImplementedError

    def recv_blocking(self, timeout: float = 5.0) -> DataPacket:
        """Wait for the next packet; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            packet = self.recv()
            if packet is not None:
                return packet
            if time.monotonic() > deadline:
                raise TransportError(f"no packet within {timeout}s")
            time.sleep(0.0005)

    def drain(self) -> list[DataPacket]:
        """All packets currently pending."""
        packets = []
        while True:
            packet = self.recv()
            if packet is None:
                return packets
            packets.append(packet)

    def close(self) -> None:
        pass


class InProcessTransport(Transport):
    """One end of a deque-backed in-process link (see :func:`transport_pair`)."""

    def __init__(self, outbox: deque[bytes], inbox: deque[bytes]):
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.corrupt_packets = 0

    def send(self, packet: DataPacket) -> None:
        self.send_wire(encode_packet(packet))

    def send_wire(self, wire: bytes) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        self.bytes_sent += len(wire)
        self.packets_sent += 1
        self._outbox.append(wire)

    def recv(self) -> DataPacket | None:
        if self._closed:
            raise TransportError("recv on closed transport")
        while self._inbox:
            wire = self._inbox.popleft()
            self.bytes_received += len(wire)
            try:
                return decode_packet(wire)
            except PacketError:
                self.corrupt_packets += 1
        return None

    def close(self) -> None:
        self._closed = True


class TcpTransport(Transport):
    """Framed packet transport over a connected TCP socket."""

    def __init__(self, sock: socket.socket, send_timeout: float = 5.0):
        self._sock = sock
        self._sock.setblocking(False)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = bytearray()
        self._closed = False
        self.send_timeout = send_timeout
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.corrupt_packets = 0

    def send(self, packet: DataPacket) -> None:
        self.send_wire(encode_packet(packet))

    def send_wire(self, wire: bytes) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        self.bytes_sent += len(wire)
        self.packets_sent += 1
        deadline = time.monotonic() + self.send_timeout
        view = memoryview(wire)
        while view:
            try:
                sent = self._sock.send(view)
            except BlockingIOError:
                # Kernel send buffer full: wait for writability with a
                # bounded deadline instead of busy-spinning.
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"TCP send stalled for {self.send_timeout}s (peer not reading)"
                    ) from None
                select.select([], [self._sock], [], min(remaining, 0.05))
                continue
            except OSError as exc:
                raise TransportError(f"TCP send failed: {exc}") from exc
            view = view[sent:]

    def _fill(self) -> None:
        while True:
            try:
                chunk = self._sock.recv(65536)
            except BlockingIOError:
                return
            except OSError as exc:
                raise TransportError(f"TCP recv failed: {exc}") from exc
            if not chunk:
                return
            self._buffer.extend(chunk)
            self.bytes_received += len(chunk)

    def _resync(self) -> None:
        """Recover framing after a corrupted header: skip to the next magic."""
        index = self._buffer.find(struct.pack("<H", MAGIC), 1)
        if index >= 0:
            del self._buffer[:index]
        else:
            # Keep the last byte: it may be the first half of a magic that
            # arrives split across reads.
            del self._buffer[: len(self._buffer) - 1]

    def recv(self) -> DataPacket | None:
        if self._closed:
            raise TransportError("recv on closed transport")
        self._fill()
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return None
            try:
                _, length = decode_header(bytes(self._buffer[:HEADER_SIZE]))
            except PacketError:
                self.corrupt_packets += 1
                self._resync()
                continue
            total = HEADER_SIZE + length
            if len(self._buffer) < total:
                return None
            wire = bytes(self._buffer[:total])
            del self._buffer[:total]
            try:
                return decode_packet(wire)
            except PacketError:
                self.corrupt_packets += 1

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


class FaultyTransport(Transport):
    """Decorator injecting wire-level faults into any transport's sends.

    Drop/corrupt/duplicate decisions come from the shared
    :class:`~repro.core.faults.FaultInjector`; delayed frames are held
    here and released once the injector's step counter has advanced by
    the rule's ``delay_steps``.
    """

    def __init__(self, inner: Transport, injector: FaultInjector):
        self.inner = inner
        self.injector = injector
        self._delayed: list[tuple[int, bytes]] = []

    def _release_due(self) -> None:
        if not self._delayed:
            return
        step = self.injector.step
        due = [wire for release, wire in self._delayed if release <= step]
        if due:
            self._delayed = [
                (release, wire) for release, wire in self._delayed if release > step
            ]
            for wire in due:
                self.inner.send_wire(wire)

    def send(self, packet: DataPacket) -> None:
        self._release_due()
        decision = self.injector.decide(packet.ptype)
        if decision.drop:
            return
        wire = encode_packet(packet)
        if decision.corrupt:
            wire = self.injector.corrupt_wire(wire)
        if decision.delay_steps > 0:
            self._delayed.append((self.injector.step + decision.delay_steps, wire))
            return
        self.inner.send_wire(wire)
        if decision.duplicate:
            self.inner.send_wire(wire)

    def send_wire(self, wire: bytes) -> None:
        self._release_due()
        self.inner.send_wire(wire)

    def recv(self) -> DataPacket | None:
        self._release_due()
        return self.inner.recv()

    def close(self) -> None:
        self.inner.close()

    @property
    def pending_delayed(self) -> int:
        return len(self._delayed)

    # Counters live on the wrapped endpoint.
    @property
    def bytes_sent(self) -> int:
        return self.inner.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self.inner.bytes_received

    @property
    def packets_sent(self) -> int:
        return self.inner.packets_sent

    @property
    def corrupt_packets(self) -> int:
        return self.inner.corrupt_packets


def transport_pair(kind: str = "inprocess") -> tuple[Transport, Transport]:
    """Create both ends of a connected link.

    ``kind`` is ``"inprocess"`` or ``"tcp"`` (localhost loopback).
    """
    if kind == "inprocess":
        a_to_b: deque[bytes] = deque()
        b_to_a: deque[bytes] = deque()
        return (
            InProcessTransport(outbox=a_to_b, inbox=b_to_a),
            InProcessTransport(outbox=b_to_a, inbox=a_to_b),
        )
    if kind == "tcp":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        client = None
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            client = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            server, _addr = listener.accept()
        except OSError as exc:
            if client is not None:
                client.close()
            raise TransportError(f"TCP loopback setup failed: {exc}") from exc
        finally:
            listener.close()
        return TcpTransport(client), TcpTransport(server)
    raise TransportError(f"unknown transport kind {kind!r}")
