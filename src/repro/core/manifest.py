"""Experiment manifests: (de)serialize configurations to JSON.

The artifact drives its experiments from declarative run configurations
(``deploy/hephaestus/runner.py`` flags); this module provides the same
capability for this repo: a :class:`CoSimConfig` round-trips through a
JSON document, so experiment sweeps can be checked into version control
and replayed bit-identically (configs are deterministic given their
seed).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.faults import FaultPlan
from repro.env.sensors import SensorNoiseProfile
from repro.errors import ConfigError

MANIFEST_FORMAT = "rose-repro-manifest/1"


def config_to_dict(config: CoSimConfig) -> dict[str, Any]:
    """Plain-dict form of a configuration (JSON-safe)."""
    data = asdict(config)
    data["sync"] = {
        "cycles_per_sync": config.sync.cycles_per_sync,
        "soc_frequency_hz": config.sync.soc_frequency_hz,
        "frame_rate_hz": config.sync.frame_rate_hz,
        "sync_done_timeout_s": config.sync.sync_done_timeout_s,
        "recv_timeout_s": config.sync.recv_timeout_s,
        "regrant_timeout_s": config.sync.regrant_timeout_s,
        "max_regrants": config.sync.max_regrants,
    }
    # asdict() mangles the fault plan (enum members, nested rule tuples);
    # the plan serializes itself with packet types by name.
    data["faults"] = config.faults.to_dict() if config.faults is not None else None
    # The scenario fields entered the config after thousands of cache
    # entries and ten golden records were keyed without them: at their
    # defaults (no profile, centered spawn) they are omitted so every
    # pre-scenario config keeps its exact serialized form — and with it
    # its config_key.  Non-default values always serialize, so two
    # configs differing in either field never share a key.
    if config.noise is None:
        del data["noise"]
    else:
        data["noise"] = config.noise.to_dict()
    if config.initial_lateral_offset == 0.0:
        del data["initial_lateral_offset"]
    return data


def config_from_dict(data: dict[str, Any]) -> CoSimConfig:
    """Inverse of :func:`config_to_dict` (validates via the dataclasses)."""
    data = dict(data)
    sync_data = data.pop("sync", None)
    sync = SyncConfig(**sync_data) if sync_data else SyncConfig()
    faults_data = data.pop("faults", None)
    faults = FaultPlan.from_dict(faults_data) if faults_data else None
    noise_data = data.pop("noise", None)
    try:
        noise = SensorNoiseProfile.from_dict(noise_data) if noise_data else None
    except ValueError as exc:
        raise ConfigError(f"invalid noise profile: {exc}") from exc
    try:
        return CoSimConfig(sync=sync, faults=faults, noise=noise, **data)
    except TypeError as exc:
        raise ConfigError(f"invalid configuration fields: {exc}") from exc


def dump_manifest(configs: dict[str, CoSimConfig]) -> str:
    """Serialize a named set of experiment configurations."""
    return json.dumps(
        {
            "format": MANIFEST_FORMAT,
            "experiments": {
                name: config_to_dict(config) for name, config in configs.items()
            },
        },
        indent=2,
        sort_keys=True,
    )


def load_manifest(text: str) -> dict[str, CoSimConfig]:
    """Parse a manifest back into configurations."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid manifest JSON: {exc}") from exc
    if data.get("format") != MANIFEST_FORMAT:
        raise ConfigError(f"unsupported manifest format {data.get('format')!r}")
    return {
        name: config_from_dict(fields)
        for name, fields in data.get("experiments", {}).items()
    }
