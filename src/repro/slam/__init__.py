"""SLAM substrate (a Section 6 extension).

"[M]any classical algorithms such as SLAM and nonlinear MPC build upon
iterative optimization algorithms or dynamically scaling data structures.
These applications have data-dependent runtime behaviors and access
patterns, where RoSE can capture their performance implications on both
hardware and software." (Section 6)

This package implements a lidar-based grid SLAM pipeline in that spirit:

* :mod:`repro.slam.grid` — a log-odds occupancy grid with vectorized ray
  integration (the dynamically *filling* data structure);
* :mod:`repro.slam.scanmatch` — hill-climbing scan-to-map matching whose
  iteration count depends on the odometry error (the data-dependent
  optimizer);
* :mod:`repro.slam.pipeline` — predict / correct / map-update pipeline
  with an explicit FLOP accounting hook for the SoC cycle models.
"""

from repro.slam.grid import GridParams, OccupancyGrid
from repro.slam.scanmatch import MatchResult, ScanMatcher
from repro.slam.pipeline import SlamPipeline, SlamUpdate, slam_grid_for_world

__all__ = [
    "GridParams",
    "OccupancyGrid",
    "ScanMatcher",
    "MatchResult",
    "SlamPipeline",
    "SlamUpdate",
    "slam_grid_for_world",
]
