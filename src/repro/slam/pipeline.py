"""The SLAM pipeline: predict -> scan-match -> map update.

Ties the occupancy grid and the scan matcher into the standard
localization-and-mapping loop, with an explicit FLOP estimate per update
so the SoC cycle model can charge the (data-dependent) compute cost:

* scan matching costs ``evaluations x beams`` endpoint transforms;
* map integration costs one update per touched cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.worlds import World
from repro.errors import ConfigError
from repro.slam.grid import GridParams, OccupancyGrid
from repro.slam.scanmatch import MatcherParams, MatchResult, ScanMatcher

#: FLOPs per endpoint transform-and-lookup in the matcher (sin/cos,
#: two multiply-adds, grid index arithmetic).
FLOPS_PER_ENDPOINT_EVAL = 14
#: FLOPs per occupancy-cell update (index math + clamped add).
FLOPS_PER_CELL_UPDATE = 8


def slam_grid_for_world(world: World, resolution: float = 0.25, margin: float = 2.0) -> OccupancyGrid:
    """An occupancy grid sized to cover a corridor world."""
    points = np.vstack([world.left_wall.points, world.right_wall.points])
    lo = points.min(axis=0) - margin
    hi = points.max(axis=0) + margin
    return OccupancyGrid(
        GridParams(
            origin_x=float(lo[0]),
            origin_y=float(lo[1]),
            width_m=float(hi[0] - lo[0]),
            height_m=float(hi[1] - lo[1]),
            resolution=resolution,
        )
    )


@dataclass(frozen=True)
class SlamUpdate:
    """Result of processing one scan."""

    x: float
    y: float
    yaw: float
    match: MatchResult
    cells_updated: int
    flops: int


class SlamPipeline:
    """Stateful localization + mapping over incoming lidar scans."""

    def __init__(
        self,
        grid: OccupancyGrid,
        initial_x: float,
        initial_y: float,
        initial_yaw: float,
        matcher_params: MatcherParams | None = None,
    ):
        self.grid = grid
        self.matcher = ScanMatcher(grid, matcher_params)
        self.x = initial_x
        self.y = initial_y
        self.yaw = initial_yaw
        self.scans_processed = 0
        self.total_flops = 0

    @property
    def pose(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.yaw)

    def process(
        self,
        odometry_dx: float,
        odometry_dy: float,
        odometry_dyaw: float,
        beam_angles: np.ndarray,
        ranges: np.ndarray,
        max_range: float,
    ) -> SlamUpdate:
        """One SLAM cycle.

        Odometry deltas are *body-frame* displacement since the previous
        scan; they are applied as the motion prediction, then corrected by
        matching against the map built so far, and finally the scan is
        integrated at the corrected pose.
        """
        if max_range <= 0:
            raise ConfigError("max_range must be positive")
        # Predict: dead-reckon with the odometry delta.
        cos_y, sin_y = math.cos(self.yaw), math.sin(self.yaw)
        predicted_x = self.x + odometry_dx * cos_y - odometry_dy * sin_y
        predicted_y = self.y + odometry_dx * sin_y + odometry_dy * cos_y
        predicted_yaw = self.yaw + odometry_dyaw

        # Correct: scan-to-map matching (data-dependent iterations).
        match = self.matcher.match(
            predicted_x, predicted_y, predicted_yaw, beam_angles, ranges, max_range
        )
        self.x, self.y, self.yaw = match.x, match.y, match.yaw

        # Map: integrate the scan at the corrected pose.
        cells = self.grid.integrate_scan(
            self.x, self.y, self.yaw, beam_angles, ranges, max_range
        )

        beams = int(np.asarray(ranges).shape[0])
        flops = (
            match.evaluations * beams * FLOPS_PER_ENDPOINT_EVAL
            + cells * FLOPS_PER_CELL_UPDATE
        )
        self.scans_processed += 1
        self.total_flops += flops
        return SlamUpdate(
            x=self.x, y=self.y, yaw=self.yaw, match=match, cells_updated=cells, flops=flops
        )
