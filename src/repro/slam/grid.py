"""Log-odds occupancy grid mapping.

The standard grid-mapping formulation: each cell holds the log-odds of
being occupied; a lidar beam decrements every cell it traverses (free
space) and increments the cell at its endpoint (a hit), with saturation.
Ray traversal is vectorized across all beams of a scan by sampling each
ray at sub-cell spacing.

The grid also counts the cells it touches per update — the access-pattern
quantity the SoC cycle model charges for (Section 6's "dynamically
scaling data structures").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class GridParams:
    """Geometry and update weights of the occupancy grid."""

    origin_x: float
    origin_y: float
    width_m: float
    height_m: float
    resolution: float = 0.25  # meters per cell
    hit_logodds: float = 1.2
    miss_logodds: float = -0.35
    clamp: float = 6.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ConfigError("resolution must be positive")
        if self.width_m <= 0 or self.height_m <= 0:
            raise ConfigError("grid dimensions must be positive")
        if self.clamp <= 0:
            raise ConfigError("clamp must be positive")


class OccupancyGrid:
    """A 2D log-odds occupancy grid."""

    def __init__(self, params: GridParams):
        self.params = params
        self.cols = max(2, int(math.ceil(params.width_m / params.resolution)))
        self.rows = max(2, int(math.ceil(params.height_m / params.resolution)))
        self.logodds = np.zeros((self.rows, self.cols), dtype=np.float32)
        self.cells_touched_total = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # Coordinate transforms (vectorized)
    # ------------------------------------------------------------------
    def world_to_cell(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map (N, 2) world points to (rows, cols, in_bounds mask)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        cols = np.floor((points[:, 0] - self.params.origin_x) / self.params.resolution).astype(int)
        rows = np.floor((points[:, 1] - self.params.origin_y) / self.params.resolution).astype(int)
        valid = (rows >= 0) & (rows < self.rows) & (cols >= 0) & (cols < self.cols)
        return rows, cols, valid

    def cell_center(self, row: int, col: int) -> np.ndarray:
        return np.array(
            [
                self.params.origin_x + (col + 0.5) * self.params.resolution,
                self.params.origin_y + (row + 0.5) * self.params.resolution,
            ]
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def integrate_scan(
        self,
        pose_x: float,
        pose_y: float,
        pose_yaw: float,
        beam_angles: np.ndarray,
        ranges: np.ndarray,
        max_range: float,
    ) -> int:
        """Integrate one scan taken from the given pose.

        Returns the number of cell updates performed (the cost driver).
        """
        beam_angles = np.asarray(beam_angles, dtype=float)
        ranges = np.asarray(ranges, dtype=float)
        if beam_angles.shape != ranges.shape:
            raise ConfigError("beam_angles and ranges must have matching shapes")
        world_angles = pose_yaw + beam_angles
        step = self.params.resolution * 0.5

        free_rows: list[np.ndarray] = []
        free_cols: list[np.ndarray] = []
        hit_points = []
        for angle, rng in zip(world_angles, ranges):
            depth = float(min(rng, max_range))
            if depth <= step:
                continue
            # Sample free space up to just short of the endpoint.
            distances = np.arange(step, depth - step / 2, step)
            if distances.size:
                xs = pose_x + distances * math.cos(angle)
                ys = pose_y + distances * math.sin(angle)
                rows, cols, valid = self.world_to_cell(np.column_stack([xs, ys]))
                free_rows.append(rows[valid])
                free_cols.append(cols[valid])
            if rng < max_range:  # a real hit, not a max-range miss
                hit_points.append(
                    (pose_x + depth * math.cos(angle), pose_y + depth * math.sin(angle))
                )

        touched = 0
        if free_rows:
            rows = np.concatenate(free_rows)
            cols = np.concatenate(free_cols)
            # Deduplicate per scan so overlapping beams don't over-clear.
            flat = np.unique(rows * self.cols + cols)
            self.logodds.reshape(-1)[flat] += self.params.miss_logodds
            touched += flat.size
        if hit_points:
            rows, cols, valid = self.world_to_cell(np.array(hit_points))
            flat = np.unique(rows[valid] * self.cols + cols[valid])
            self.logodds.reshape(-1)[flat] += self.params.hit_logodds
            touched += flat.size
        np.clip(self.logodds, -self.params.clamp, self.params.clamp, out=self.logodds)
        self.cells_touched_total += touched
        self.updates += 1
        return touched

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def occupancy_probability(self, points: np.ndarray) -> np.ndarray:
        """P(occupied) for each (N, 2) world point; 0.5 out of bounds."""
        rows, cols, valid = self.world_to_cell(points)
        probs = np.full(rows.shape, 0.5)
        lo = self.logodds[rows[valid], cols[valid]]
        probs[valid] = 1.0 / (1.0 + np.exp(-lo))
        return probs

    def endpoint_evidence(
        self, points: np.ndarray, known_threshold: float = 0.5
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(probs, known)`` for each point.

        ``known`` marks points landing on cells with accumulated evidence
        (|log-odds| above the threshold).  Scan matchers must score only
        known cells: treating unexplored frontier cells as 0.5-probability
        evidence systematically rewards poses that retreat into the mapped
        region.
        """
        rows, cols, valid = self.world_to_cell(points)
        probs = np.full(rows.shape, 0.5)
        known = np.zeros(rows.shape, dtype=bool)
        lo = self.logodds[rows[valid], cols[valid]]
        probs[valid] = 1.0 / (1.0 + np.exp(-lo))
        known[valid] = np.abs(lo) > known_threshold
        return probs, known

    @property
    def observed_fraction(self) -> float:
        """Fraction of cells with meaningful evidence (|logodds| > 0.5)."""
        return float((np.abs(self.logodds) > 0.5).mean())

    @property
    def occupied_cells(self) -> int:
        return int((self.logodds > 0.5).sum())

    @property
    def free_cells(self) -> int:
        return int((self.logodds < -0.5).sum())
