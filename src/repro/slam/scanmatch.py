"""Scan-to-map matching by hill climbing.

Pose correction in the classic grid-SLAM style: score a candidate pose by
how well the scan's endpoints land on occupied map cells, and hill-climb
over (x, y, yaw) perturbations with a shrinking step until no neighbour
improves.  The iteration count — hence the compute cost — depends on how
far the odometry prediction has drifted, which is exactly the
data-dependent runtime behaviour Section 6 highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.slam.grid import OccupancyGrid


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one scan-match."""

    x: float
    y: float
    yaw: float
    score: float
    iterations: int
    evaluations: int


@dataclass(frozen=True)
class MatcherParams:
    initial_linear_step: float = 0.2  # m
    initial_angular_step: float = 0.04  # rad
    step_shrink: float = 0.5
    min_linear_step: float = 0.02
    max_iterations: int = 60
    min_hit_fraction: float = 0.05  # below this the map is too empty to match
    #: Score assigned to endpoints on unexplored cells.  Must sit between
    #: "free" (~0) and "occupied" (~1), mildly pessimistic: pure exclusion
    #: makes the score asymmetric around map frontiers (a move that pushes
    #: endpoints off the map costs nothing while the opposite move lands
    #: them in carved free space at heavy cost), which drags the estimate
    #: toward the mapped region.
    unknown_endpoint_value: float = 0.35
    #: Odometry-prior weights and search window: candidates are penalized
    #: quadratically for deviating from the motion prediction and rejected
    #: outright beyond the window.  Both are essential in self-similar
    #: environments (a straight corridor is translation-ambiguous along
    #: its axis, and the well-established older map always scores a bit
    #: better than the thin frontier — perceptual aliasing); the window
    #: reflects odometry uncertainty, as in production grid SLAM.
    prior_linear_weight: float = 1.5  # score per m^2
    prior_angular_weight: float = 4.0  # score per rad^2
    max_correction_linear: float = 0.5  # m from the prediction
    max_correction_angular: float = 0.12  # rad from the prediction

    def __post_init__(self) -> None:
        if not (0 < self.step_shrink < 1):
            raise ConfigError("step_shrink must be in (0, 1)")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be positive")


class ScanMatcher:
    """Hill-climbing matcher over an :class:`OccupancyGrid`."""

    def __init__(self, grid: OccupancyGrid, params: MatcherParams | None = None):
        self.grid = grid
        self.params = params or MatcherParams()

    def score(
        self,
        x: float,
        y: float,
        yaw: float,
        beam_angles: np.ndarray,
        ranges: np.ndarray,
        max_range: float,
    ) -> float:
        """Mean occupancy at the scan endpoints under the candidate pose.

        Max-range beams carry no endpoint evidence and are skipped.
        Endpoints on *unexplored* cells score the fixed
        ``unknown_endpoint_value`` — see :class:`MatcherParams` for why
        both pure 0.5-evidence and pure exclusion bias the match around
        map frontiers.  A minimum fraction of the endpoints must land on
        known cells for the score to be trusted at all.
        """
        hits = ranges < max_range
        if not np.any(hits):
            return 0.0
        angles = yaw + beam_angles[hits]
        xs = x + ranges[hits] * np.cos(angles)
        ys = y + ranges[hits] * np.sin(angles)
        probs, known = self.grid.endpoint_evidence(np.column_stack([xs, ys]))
        n_hits = int(hits.sum())
        if known.sum() < max(4, 0.25 * n_hits):
            return 0.0  # too little overlap with the map to judge
        contributions = np.where(known, probs, self.params.unknown_endpoint_value)
        return float(contributions.mean())

    def match(
        self,
        x: float,
        y: float,
        yaw: float,
        beam_angles: np.ndarray,
        ranges: np.ndarray,
        max_range: float,
    ) -> MatchResult:
        """Refine the pose estimate against the current map.

        If the map has too little evidence to score against, the initial
        pose is returned unchanged (iterations = 0).
        """
        beam_angles = np.asarray(beam_angles, dtype=float)
        ranges = np.asarray(ranges, dtype=float)
        if self.grid.observed_fraction < 1e-6:
            return MatchResult(x, y, yaw, 0.0, 0, 0)

        p = self.params

        def penalized(cx: float, cy: float, cyaw: float) -> float:
            if (
                abs(cx - x) > p.max_correction_linear
                or abs(cy - y) > p.max_correction_linear
                or abs(cyaw - yaw) > p.max_correction_angular
            ):
                return -np.inf  # outside the odometry-uncertainty window
            prior = (
                p.prior_linear_weight * ((cx - x) ** 2 + (cy - y) ** 2)
                + p.prior_angular_weight * (cyaw - yaw) ** 2
            )
            return self.score(cx, cy, cyaw, beam_angles, ranges, max_range) - prior

        best = (x, y, yaw)
        best_score = penalized(x, y, yaw)
        if best_score < p.min_hit_fraction:
            return MatchResult(x, y, yaw, best_score, 0, 1)

        linear = p.initial_linear_step
        angular = p.initial_angular_step
        iterations = 0
        evaluations = 1
        while iterations < p.max_iterations:
            iterations += 1
            improved = False
            bx, by, byaw = best
            for dx, dy, dyaw in (
                (linear, 0.0, 0.0),
                (-linear, 0.0, 0.0),
                (0.0, linear, 0.0),
                (0.0, -linear, 0.0),
                (0.0, 0.0, angular),
                (0.0, 0.0, -angular),
            ):
                candidate_score = penalized(bx + dx, by + dy, byaw + dyaw)
                evaluations += 1
                if candidate_score > best_score + 1e-9:
                    best = (bx + dx, by + dy, byaw + dyaw)
                    best_score = candidate_score
                    improved = True
                    break  # greedy: take the first improving move
            if not improved:
                if linear <= p.min_linear_step:
                    break
                linear *= p.step_shrink
                angular *= p.step_shrink
        return MatchResult(
            x=best[0],
            y=best[1],
            yaw=math.atan2(math.sin(best[2]), math.cos(best[2])),
            score=best_score,
            iterations=iterations,
            evaluations=evaluations,
        )
