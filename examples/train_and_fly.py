#!/usr/bin/env python3
"""Train a real CNN on rendered camera images, then fly with it.

This exercises the paper's full software build flow (Section 3.3) end to
end with no calibrated shortcut: render a trail dataset from the tunnel
world, train the dual-head TrailNet-style CNN with SGD, report validation
accuracy per head (the Table 3 accuracy column's pipeline), export the
model topology to onnx-lite JSON, and finally fly the tunnel closed-loop
with the *trained network doing the perceiving* from the camera packets.

Run:  python examples/train_and_fly.py        (takes ~1 minute)
"""

from repro import CoSimConfig
from repro.app.perception import CnnPerception
from repro.core.cosim import run_mission
from repro.dnn.dataset import generate_trail_dataset
from repro.dnn.resnet import TrailNetModel, build_resnet_graph
from repro.dnn.trainer import SgdConfig, train
from repro.env.camera import CameraParams


def main() -> None:
    # 1. Render the dataset (paper: 2000/class; scaled down for a demo).
    print("Rendering trail dataset from the tunnel world...")
    camera = CameraParams()  # must match the simulator's camera
    dataset = generate_trail_dataset(samples_per_class=150, camera=camera, seed=7)
    train_set, val_set = dataset.split(0.85, seed=0)
    print(f"  {len(train_set)} training / {len(val_set)} validation images "
          f"({camera.height}x{camera.width})")

    # 2. Train the dual-head classifier.
    print("Training dual-head CNN (SGD + momentum)...")
    model = TrailNetModel(
        input_shape=(1, camera.height, camera.width),
        stage_blocks=(1, 1),
        stage_channels=(8, 16),
        seed=0,
    )
    result = train(
        model, train_set, val_set,
        SgdConfig(epochs=10, batch_size=32, learning_rate=0.05, seed=0),
    )
    for epoch in result.history:
        print(f"  epoch {epoch.epoch}: loss {epoch.loss:.3f}  "
              f"angular acc {epoch.angular_accuracy:.2f}  "
              f"lateral acc {epoch.lateral_accuracy:.2f}")

    # 3. Export the deployment graph (the "ONNX export" step).
    graph = build_resnet_graph("resnet14")
    print(f"Deployment graph: {graph.name}, {len(graph)} nodes, "
          f"{graph.total_macs / 1e6:.0f} MMACs, "
          f"{graph.total_params / 1e6:.1f} M params "
          f"({len(graph.to_json())} bytes of onnx-lite JSON)")

    # 4. Fly closed-loop with the trained CNN as the perception stage.
    print("Flying the tunnel with the trained CNN in the loop...")
    config = CoSimConfig(
        world="tunnel",
        soc="A",
        model="resnet14",  # timing model (the CNN supplies the outputs)
        target_velocity=2.0,
        initial_angle_deg=10.0,
        max_sim_time=45.0,
    )
    mission = run_mission(config, perception=CnnPerception(model))
    print()
    print(mission.summary())
    if mission.completed:
        print("The trained network navigated the corridor closed-loop.")
    else:
        print(f"Progress {100 * mission.progress:.0f}% — train longer / larger "
              "for a controller that completes the course.")


if __name__ == "__main__":
    main()
