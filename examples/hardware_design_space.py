#!/usr/bin/env python3
"""Hardware design-space exploration (the Figure 10 / Figure 14 workflow).

Compares the three Table 2 SoC configurations on the tunnel course, then
sweeps controller DNNs on BOOM+Gemmini vs Rocket+Gemmini in the s-shape
course — the experiment that shows the *optimal DNN changes with the
microarchitecture* (Section 5.4).

Run:  python examples/hardware_design_space.py        (takes ~1 minute)
"""

from dataclasses import replace

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table


def mission_row(result):
    status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
    return [
        status,
        result.collisions,
        f"{result.average_velocity:.2f}",
        f"{result.mean_inference_latency_ms:.0f}ms",
    ]


def tunnel_hardware_comparison() -> None:
    print("== Effect of SoC architecture (tunnel, ResNet14 @ 3 m/s, +20 deg) ==")
    base = CoSimConfig(
        world="tunnel",
        model="resnet14",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
    )
    rows = []
    for soc in ("A", "B", "C"):
        result = run_mission(replace(base, soc=soc))
        rows.append([soc] + mission_row(result))
    print(format_table(
        ["SoC", "mission", "collisions", "avg v [m/s]", "DNN latency"], rows
    ))
    print("Config C (no accelerator) cannot navigate: inference takes ~6 s.")
    print()


def hwsw_codesign_sweep() -> None:
    print("== HW x SW co-design (s-shape @ 9 m/s) ==")
    models = ("resnet6", "resnet11", "resnet14", "resnet18", "resnet34")
    rows = []
    for soc in ("A", "B"):
        base = CoSimConfig(world="s-shape", soc=soc, target_velocity=9.0, max_sim_time=60.0)
        for model in models:
            result = run_mission(replace(base, model=model))
            rows.append([soc, model] + mission_row(result))
    print(format_table(
        ["SoC", "model", "mission", "collisions", "avg v [m/s]", "DNN latency"], rows
    ))
    print("The best controller depends on the SoC: slower cores favour")
    print("lower-latency networks even at lower accuracy (Section 5.4).")


def main() -> None:
    tunnel_hardware_comparison()
    hwsw_codesign_sweep()


if __name__ == "__main__":
    main()
