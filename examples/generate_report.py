#!/usr/bin/env python3
"""Regenerate a quick paper-vs-measured reproduction report.

Runs a reduced single-seed subset of the evaluation (Table 3's latency
model, the Figure 12 velocity sweep, the Figure 15 throughput curve) and
writes a markdown report — the living version of EXPERIMENTS.md's claims.

Run:  python examples/generate_report.py [output.md]   (takes ~20 s)
"""

import sys

from repro.analysis.report import quick_report


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "report.md"
    text = quick_report()
    with open(output, "w") as handle:
        handle.write(text)
    print(text)
    print(f"(written to {output})")


if __name__ == "__main__":
    main()
