#!/usr/bin/env python3
"""Classical robotics workloads: MPC and lidar SLAM (Section 6 extensions).

The paper's future-work section highlights classical algorithms — SLAM and
nonlinear MPC — whose iterative optimizers and growing data structures give
them *data-dependent* runtimes that only a closed-loop co-simulation can
characterize.  This example flies both:

1. an MPC navigator whose solver iterations spike when the vehicle is
   disturbed (watch the iteration trace settle after the +20 deg start);
2. a lidar-SLAM navigator that builds an occupancy map onboard, localizes
   against it, and steers the course entirely from its own pose estimate.

Run:  python examples/classical_workloads.py        (takes ~30 s)
"""

import numpy as np

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table


def mpc_demo() -> None:
    print("== MPC navigation (tunnel @ 3 m/s, +20 deg start) ==")
    result = run_mission(
        CoSimConfig(
            world="tunnel",
            controller="mpc",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=40.0,
        )
    )
    print(result.summary())
    history = result.mpc_stats.iteration_history
    print("Solver iterations over the flight (data-dependent runtime):")
    chunks = [history[i : i + len(history) // 8] for i in range(0, len(history), max(1, len(history) // 8))]
    rows = [
        [f"{i * 100 // len(chunks)}-{(i + 1) * 100 // len(chunks)}%",
         f"{np.mean(chunk):.1f}", max(chunk)]
        for i, chunk in enumerate(chunks) if chunk
    ]
    print(format_table(["flight phase", "mean iters", "max iters"], rows))
    print("The +20 deg disturbance costs extra iterations early; cruise is cheap.")
    print()


def slam_demo() -> None:
    print("== SLAM navigation (s-shape @ 6 m/s, steering from the estimate) ==")
    result = run_mission(
        CoSimConfig(
            world="s-shape",
            controller="slam",
            target_velocity=6.0,
            max_sim_time=45.0,
        )
    )
    print(result.summary())
    stats = result.slam_stats
    print(f"SLAM updates:          {stats.updates}")
    print(f"Mean matcher iters:    {stats.mean_iterations:.1f}")
    print(f"Mean pose error:       {stats.mean_pose_error:.2f} m")
    print(f"Final pose error:      {stats.final_pose_error:.2f} m")
    print(f"Total SLAM compute:    {stats.total_flops / 1e6:.1f} MFLOPs "
          "(charged to the SoC cycle by cycle)")
    print()
    print("Ground truth never reaches the controller: odometry noise is")
    print("corrected by scan-matching against the map built in flight.")


def main() -> None:
    mpc_demo()
    slam_demo()


if __name__ == "__main__":
    main()
