#!/usr/bin/env python3
"""Co-simulation accuracy/throughput tradeoff (Figures 15 and 16).

Part 1 models wall-clock simulation throughput across synchronization
granularities for both Table 4 deployments (Figure 15).  Part 2 actually
flies the same tunnel mission at increasingly coarse synchronization and
measures how the image-request -> DNN-output latency inflates and the
trajectory degrades (Figure 16).

Run:  python examples/simulator_performance.py        (takes ~30 s)
"""

from repro.analysis.figures import fig15_data, fig16_data
from repro.analysis.render import format_table
from repro.core.deploy import CLOUD_AWS, ON_PREMISE


def throughput_curves() -> None:
    print("== Simulation throughput vs synchronization granularity (Fig 15) ==")
    for deployment in (ON_PREMISE, CLOUD_AWS):
        points = fig15_data(deployment)
        rows = [
            [f"{p.cycles_per_sync / 1e6:.0f}M", f"{p.throughput_mhz:.2f}", f"{p.sync_only_mhz:.2f}"]
            for p in points
        ]
        print(format_table(
            ["cycles/sync", "throughput [MHz]", "sync-only [MHz]"],
            rows,
            title=f"[{deployment.name}] FPGA max {deployment.perf.fpga_sim_rate_mhz} MHz, "
                  f"per-sync overhead {deployment.perf.sync_overhead_s * 1e3:.0f} ms",
        ))
        print()


def granularity_effects() -> None:
    print("== Effect of granularity on the *simulated* system (Fig 16) ==")
    print("(tunnel @ 3 m/s, ResNet14, +20 deg start; this re-flies the")
    print(" mission at each granularity, so it takes a few seconds)")
    data = fig16_data()
    rows = []
    for cycles, result in data.items():
        status = f"{result.mission_time:.1f}s" if result.completed else "DNF"
        rows.append([
            f"{cycles / 1e6:.0f}M",
            result.config.sync.frames_per_sync,
            f"{result.mean_inference_latency_ms:.0f}ms",
            result.inference_count,
            status,
            result.collisions,
        ])
    print(format_table(
        ["cycles/sync", "frames/sync", "req->output latency", "inferences", "mission", "coll."],
        rows,
    ))
    print()
    print("Coarser synchronization adds artificial I/O latency (requests are")
    print("only answered at sync boundaries), degrading the closed-loop")
    print("behaviour — the accuracy/throughput tradeoff of Section 5.5.")


def main() -> None:
    throughput_curves()
    granularity_effects()


if __name__ == "__main__":
    main()
