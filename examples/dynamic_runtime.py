#!/usr/bin/env python3
"""Dynamic DNN selection under deadlines (the Figure 13 workflow).

Flies the s-shape course three ways: statically with ResNet14, statically
with ResNet6, and with the Section 5.3 dynamic runtime that measures the
forward depth sensor, derives the Equation 3-5 collision deadline, and
switches to the low-latency ResNet6 (argmax policy) whenever the UAV is at
risk — trading accelerator activity for responsiveness.

Run:  python examples/dynamic_runtime.py        (takes ~30 s)
"""

from dataclasses import replace

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table
from repro.app.deadline import DeadlinePolicy, process_deadline


def main() -> None:
    # The deadline model itself, at a glance.
    print("Equation 3-5 deadline budget at 9 m/s:")
    for depth in (30.0, 10.0, 5.0, 3.0):
        budget = process_deadline(depth, 9.0)
        risky = DeadlinePolicy().at_risk(depth, 9.0)
        print(f"  depth {depth:5.1f} m -> t_process budget {budget:6.3f} s"
              f"{'   << AT RISK: switch to ResNet6' if risky else ''}")
    print()

    base = CoSimConfig(world="s-shape", soc="A", target_velocity=9.0, max_sim_time=60.0)
    runs = {
        "static ResNet14": replace(base, model="resnet14"),
        "static ResNet6": replace(base, model="resnet6"),
        "dynamic (14<->6)": replace(base, dynamic_runtime=True),
    }

    rows = []
    for label, config in runs.items():
        result = run_mission(config)
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        by_model = result.app_stats.inferences_by_model
        mix = " + ".join(f"{count}x{name[6:]}" for name, count in sorted(by_model.items()))
        rows.append([
            label,
            status,
            result.collisions,
            f"{result.activity_factor:.3f}",
            result.inference_count,
            mix,
            result.app_stats.session_switches,
        ])

    print(format_table(
        ["runtime", "mission", "coll.", "activity", "inferences", "mix", "switches"],
        rows,
        title="Static vs dynamic DNN selection (s-shape @ 9 m/s)",
    ))
    print()
    print("The dynamic runtime matches ResNet14's mission time at a lower")
    print("accelerator activity factor, despite paying a session-switch")
    print("penalty on every network change (Section 5.3).")


if __name__ == "__main__":
    main()
