#!/usr/bin/env python3
"""Quickstart: fly one closed-loop co-simulated mission.

Builds the full RoSE stack — environment simulator, cycle-level SoC model
(3-wide BOOM + Gemmini, Table 2 config A), ResNet14 trail-navigation
controller, RoSE bridge and lockstep synchronizer — and flies the paper's
tunnel course starting 20 degrees off-axis at 3 m/s.

Run:  python examples/quickstart.py
"""

from repro import CoSimConfig, run_mission
from repro.analysis.plot import trajectory_plot
from repro.env.worlds import make_world


def main() -> None:
    config = CoSimConfig(
        world="tunnel",          # 50 m x 3.2 m straight corridor
        soc="A",                 # BOOM + Gemmini (Table 2)
        model="resnet14",        # dual-head TrailNet-style controller
        target_velocity=3.0,     # m/s
        initial_angle_deg=20.0,  # Figure 10's hardest initial condition
        max_sim_time=40.0,
    )
    print(f"Flying {config.world} with SoC {config.soc} / {config.model} "
          f"at {config.target_velocity} m/s "
          f"({config.sync.describe()})...")

    result = run_mission(config)

    print()
    print(result.summary())
    print()
    print("Trajectory (one sample per second):")
    print(f"  {'t [s]':>6} {'x [m]':>7} {'y [m]':>7} {'speed':>6}")
    for point in result.trajectory:
        if abs(point.time - round(point.time)) < 1e-9:
            print(f"  {point.time:6.1f} {point.x:7.2f} {point.y:7.2f} {point.speed:6.2f}")

    print()
    print("Top view (walls '#', flown path 'o'):")
    print(trajectory_plot(make_world(config.world), {"o-flight": result.trajectory},
                          width=100, height=11))

    print()
    print(f"SoC executed {result.soc_cycles / 1e9:.2f} G cycles; "
          f"Gemmini busy {result.gemmini_busy_cycles / 1e9:.2f} G cycles "
          f"(activity factor {result.activity_factor:.2f})")
    print(f"Synchronizer logged {len(result.logger)} steps; "
          f"first CSV rows:")
    for line in result.logger.to_csv().splitlines()[:3]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
